package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"raven"
	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/train"
)

// assertGoroutinesReturn polls the goroutine count back to baseline —
// the server-level goroutine-leak check for drains and cancellations.
func assertGoroutinesReturn(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:m])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

const testPredict = `SELECT d.id, p.score FROM PREDICT(MODEL='duration_of_stay',
	DATA=(SELECT * FROM patient_info AS pi
	      JOIN blood_tests AS bt ON pi.id = bt.id
	      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
	WITH (score FLOAT) AS p WHERE d.age > 40`

// hospitalDB builds an engine with the hospital workload and a stored
// forest model (slow enough that concurrent traffic overlaps).
func hospitalDB(t testing.TB, rows, trees int, opts ...raven.Option) *raven.DB {
	t.Helper()
	db := raven.MustOpen(opts...)
	h, err := data.GenHospital(db.Catalog(), rows, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	rf := train.FitForest(h.TrainX, h.TrainY, train.ForestOptions{
		NumTrees: trees,
		Seed:     5,
		Tree:     train.TreeOptions{MaxDepth: 8, MinLeaf: 10},
	})
	if err := db.StoreModel("duration_of_stay", &ml.Pipeline{Final: rf, InputColumns: h.FeatureCols}); err != nil {
		t.Fatal(err)
	}
	return db
}

// startServer runs a real listener (so graceful shutdown is exercised
// the way production sees it) and returns a client plus the server.
func startServer(t testing.TB, db *raven.DB, opts Options) (*Client, *Server, *http.Client) {
	t.Helper()
	srv := New(db, opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil && err != http.ErrServerClosed {
			t.Errorf("serve: %v", err)
		}
	})
	hc := &http.Client{Transport: &http.Transport{}}
	t.Cleanup(hc.CloseIdleConnections)
	return &Client{Base: "http://" + l.Addr().String(), HTTP: hc}, srv, hc
}

func TestWireProtocolBasics(t *testing.T) {
	db := hospitalDB(t, 500, 4)
	c, _, _ := startServer(t, db, Options{})

	if status, err := c.Healthz(); err != nil || status != "ok" {
		t.Fatalf("healthz = %q, %v", status, err)
	}
	// Side-effect-only script.
	res, err := c.Query(QueryRequest{SQL: `CREATE TABLE kv (k INT PRIMARY KEY, v FLOAT); INSERT INTO kv VALUES (1, 10.5), (2, 20.5)`})
	if err != nil || !res.OK {
		t.Fatalf("exec: %+v, %v", res, err)
	}
	// Streamed SELECT with header, rows and trailer.
	sel, err := c.Query(QueryRequest{SQL: `SELECT k, v FROM kv`})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Rows) != 2 || sel.Columns[0] != "k" || sel.Types[1] != "FLOAT" {
		t.Fatalf("select: %+v", sel)
	}
	if sel.Trailer.Rows != 2 {
		t.Fatalf("trailer: %+v", sel.Trailer)
	}
	// PREDICT over the wire.
	pred, err := c.Query(QueryRequest{SQL: testPredict})
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Rows) == 0 || len(pred.Columns) != 2 {
		t.Fatalf("predict: %d rows, cols %v", len(pred.Rows), pred.Columns)
	}
	// Errors: bad SQL is a 400, unknown statement a 404, bad body a 400.
	if _, err := c.Query(QueryRequest{SQL: "SELECT FROM FROM"}); status(err) != http.StatusBadRequest {
		t.Fatalf("bad sql: %v", err)
	}
	if _, err := c.StmtQuery("nope", QueryRequest{}); status(err) != http.StatusNotFound {
		t.Fatalf("unknown stmt: %v", err)
	}
	resp, err := http.Post(c.Base+"/query", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d", resp.StatusCode)
	}
}

func TestPreparedStatementOverWire(t *testing.T) {
	db := hospitalDB(t, 500, 4)
	c, _, _ := startServer(t, db, Options{})

	pr, err := c.Prepare(QueryRequest{SQL: strings.Replace(testPredict, "> 40", "> @minage", 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Params) != 1 || pr.Params[0] != "minage" {
		t.Fatalf("params = %v", pr.Params)
	}
	warm, err := c.StmtQuery(pr.ID, QueryRequest{Params: map[string]string{"minage": "40"}})
	if err != nil {
		t.Fatal(err)
	}
	adhoc, err := c.Query(QueryRequest{SQL: testPredict})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Fingerprint() != adhoc.Fingerprint() {
		t.Fatal("prepared result differs from ad-hoc")
	}
	// Missing param is a clean client error.
	if _, err := c.StmtQuery(pr.ID, QueryRequest{}); status(err) != http.StatusBadRequest {
		t.Fatalf("missing param: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.Statements != 1 || st.Server.Prepares != 1 {
		t.Fatalf("stats: %+v", st.Server)
	}
	if st.Engine.PlanCache.Capacity == 0 || st.Engine.SessionCache.Misses == 0 {
		t.Fatalf("engine stats missing: %+v", st.Engine)
	}
	if err := c.CloseStmt(pr.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseStmt(pr.ID); status(err) != http.StatusNotFound {
		t.Fatalf("double close: %v", err)
	}
}

// TestConcurrentClientsParity is the acceptance scenario: 32 concurrent
// clients against an admission limit of 4 all complete correctly with
// results byte-identical to serial execution, and the active-query gauge
// never exceeds the limit.
func TestConcurrentClientsParity(t *testing.T) {
	db := hospitalDB(t, 2000, 8,
		raven.WithMaxConcurrentQueries(4),
		raven.WithSchedulerQueue(64, 0),
	)
	c, _, _ := startServer(t, db, Options{})

	// Serial reference over the same wire (DOP 1 forced).
	serialOpts := &QueryOptions{Parallelism: 1}
	ref, err := c.Query(QueryRequest{SQL: testPredict, Options: serialOpts})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Rows) == 0 {
		t.Fatal("reference returned no rows")
	}
	want := ref.Fingerprint()

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.Query(QueryRequest{SQL: testPredict})
			if err != nil {
				errs <- err
				return
			}
			if got := res.Fingerprint(); got != want {
				errs <- fmt.Errorf("result mismatch: %d rows vs %d", len(res.Rows), len(ref.Rows))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := db.Scheduler().Stats()
	if st.MaxActive > 4 {
		t.Fatalf("active gauge exceeded admission limit: %d > 4", st.MaxActive)
	}
	if st.Admitted < clients {
		t.Fatalf("admitted %d < %d clients", st.Admitted, clients)
	}
	if st.Active != 0 || st.SlotsInUse != 0 {
		t.Fatalf("not quiescent after burst: %+v", st)
	}
}

// TestRejectAndTimeoutStatusCodes pins the wire contract: queue-full
// rejections and queue timeouts are distinct status codes (429 vs 504).
func TestRejectAndTimeoutStatusCodes(t *testing.T) {
	db := hospitalDB(t, 200, 2,
		raven.WithMaxConcurrentQueries(1),
		raven.WithSchedulerQueue(1, 50*time.Millisecond),
	)
	c, _, _ := startServer(t, db, Options{})

	// Occupy the single slot directly so HTTP requests queue behind it.
	release, err := db.Scheduler().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}

	// First request fills the queue, then times out after 50ms → 504.
	timedOut := make(chan error, 1)
	go func() {
		_, err := c.Query(QueryRequest{SQL: `SELECT COUNT(*) AS n FROM patient_info`})
		timedOut <- err
	}()
	waitFor(t, func() bool { return db.Scheduler().Stats().Waiting == 1 })

	// Second request: limit reached AND queue full → immediate 429.
	if _, err := c.Query(QueryRequest{SQL: `SELECT COUNT(*) AS n FROM patient_info`}); status(err) != http.StatusTooManyRequests {
		t.Fatalf("queue-full: want 429, got %v", err)
	}
	if err := <-timedOut; status(err) != http.StatusGatewayTimeout {
		t.Fatalf("queue-timeout: want 504, got %v", err)
	}
	release()

	// The server recovers: next query runs.
	if _, err := c.Query(QueryRequest{SQL: `SELECT COUNT(*) AS n FROM patient_info`}); err != nil {
		t.Fatal(err)
	}
	st := db.Scheduler().Stats()
	if st.Rejected != 1 || st.TimedOut != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestClientDisconnectCancelsQueued covers the queued-not-yet-admitted
// path: a client that hangs up while its query waits in the admission
// queue must be removed promptly, leaking nothing and admitting no work.
func TestClientDisconnectCancelsQueued(t *testing.T) {
	db := hospitalDB(t, 200, 2,
		raven.WithMaxConcurrentQueries(1),
		raven.WithSchedulerQueue(8, 0),
	)
	c, _, hc := startServer(t, db, Options{})

	release, err := db.Scheduler().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	gone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/query",
			strings.NewReader(`{"sql":"SELECT COUNT(*) AS n FROM patient_info"}`))
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		gone <- err
	}()
	waitFor(t, func() bool { return db.Scheduler().Stats().Waiting == 1 })
	cancel() // client disconnect while queued
	if err := <-gone; err == nil {
		t.Fatal("request should have failed with context.Canceled")
	}
	waitFor(t, func() bool {
		st := db.Scheduler().Stats()
		return st.Waiting == 0 && st.Cancelled >= 1
	})
	if st := db.Scheduler().Stats(); st.Admitted != 1 { // only the direct Acquire
		t.Fatalf("cancelled queued query was admitted: %+v", st)
	}
	release()
	assertGoroutinesReturn(t, base)
}

// TestGracefulDrainUnderLoad is the shutdown acceptance: under a mix of
// running and queued PREDICT queries, Shutdown lets admitted queries
// finish (complete streams), fails queued ones with 503, flips healthz
// to 503, and leaves zero goroutines behind.
func TestGracefulDrainUnderLoad(t *testing.T) {
	// Big enough that queries are still streaming when drain starts.
	db := hospitalDB(t, 20000, 16,
		raven.WithMaxConcurrentQueries(2),
		raven.WithSchedulerQueue(16, 0),
	)
	baseline := runtime.NumGoroutine()
	c, srv, hc := startServer(t, db, Options{})

	const clients = 6
	type outcome struct {
		res *StreamResult
		err error
	}
	results := make(chan outcome, clients)
	for i := 0; i < clients; i++ {
		go func() {
			res, err := c.Query(QueryRequest{SQL: testPredict})
			results <- outcome{res, err}
		}()
	}
	// Wait until the scheduler is saturated: 2 running, ≥1 queued.
	waitFor(t, func() bool {
		st := db.Scheduler().Stats()
		return st.Active == 2 && st.Waiting >= 1
	})

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	var completed, drained int
	var want string
	for i := 0; i < clients; i++ {
		o := <-results
		switch {
		case o.err == nil:
			// A completed stream must be whole: trailer seen (readStream
			// enforces trailer/row-count consistency).
			if len(o.res.Rows) == 0 {
				t.Error("completed query streamed no rows")
			}
			if want == "" {
				want = o.res.Fingerprint()
			} else if o.res.Fingerprint() != want {
				t.Error("drained-run result differs")
			}
			completed++
		case status(o.err) == http.StatusServiceUnavailable:
			drained++
		default:
			t.Errorf("unexpected outcome: %v", o.err)
		}
	}
	if completed == 0 || drained == 0 {
		t.Fatalf("wanted both completions and drain-failures, got %d/%d", completed, drained)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := db.Scheduler().Stats(); st.Active != 0 || !st.Draining {
		t.Fatalf("post-drain scheduler: %+v", st)
	}
	// The t.Cleanup shutdown is now a no-op; check leaks directly.
	hc.CloseIdleConnections()
	assertGoroutinesReturn(t, baseline)
}

// TestHealthzDrainingAndAdmissionRefusal uses handler-level draining
// (no listener) to pin the 503 surface.
func TestHealthzDrainingAndAdmissionRefusal(t *testing.T) {
	db := hospitalDB(t, 200, 2, raven.WithMaxConcurrentQueries(2))
	srv := New(db, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go http.Serve(l, srv.Handler())
	hc := &http.Client{Transport: &http.Transport{}}
	defer hc.CloseIdleConnections()
	c := &Client{Base: "http://" + l.Addr().String(), HTTP: hc}

	if status_, err := c.Healthz(); status(err) != http.StatusServiceUnavailable || status_ != "draining" {
		t.Fatalf("healthz while draining = %q, %v", status_, err)
	}
	if _, err := c.Query(QueryRequest{SQL: "SELECT COUNT(*) AS n FROM patient_info"}); status(err) != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: %v", err)
	}
	if _, err := c.Prepare(QueryRequest{SQL: "SELECT COUNT(*) AS n FROM patient_info"}); status(err) != http.StatusServiceUnavailable {
		t.Fatalf("prepare while draining: %v", err)
	}
}

// TestQueryTimeoutOverWire: a per-request timeout lands mid-execution
// and surfaces as 504 with nothing leaked. The aggregate produces no row
// until the whole PREDICT finishes, so the deadline always lands before
// the status line commits.
func TestQueryTimeoutOverWire(t *testing.T) {
	db := hospitalDB(t, 20000, 16)
	c, _, hc := startServer(t, db, Options{})
	base := runtime.NumGoroutine()
	agg := strings.Replace(testPredict, "SELECT d.id, p.score", "SELECT COUNT(*) AS n, AVG(p.score) AS avgscore", 1)
	_, err := c.Query(QueryRequest{SQL: agg, TimeoutMillis: 1,
		Options: &QueryOptions{Parallelism: 1}})
	if status(err) != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %v", err)
	}
	hc.CloseIdleConnections()
	assertGoroutinesReturn(t, base)
}

// TestTenantHeadersQuotasAndStats pins the multi-tenant wire contract:
// tenant tags arrive via header or body, a zero-quota tenant gets
// per-tenant 429s with a Retry-After hint while others keep running,
// prepared statements remember their registered tenant (and per-request
// headers override it), and /stats nests per-tenant counters under the
// scheduler section without breaking the pre-tenant top-level fields.
func TestTenantHeadersQuotasAndStats(t *testing.T) {
	db := hospitalDB(t, 500, 4,
		raven.WithMaxConcurrentQueries(4),
		raven.WithSchedulerQueue(16, 0),
		raven.WithTenantQuota("banned", 0, 0),
		raven.WithTenantQuota("batch", 2, 0),
	)
	c, _, hc := startServer(t, db, Options{})

	countSQL := `SELECT COUNT(*) AS n FROM patient_info`

	// Body-tagged query for an allowed tenant.
	if _, err := c.Query(QueryRequest{SQL: countSQL, Tenant: "batch", Priority: IntPtr(3)}); err != nil {
		t.Fatal(err)
	}

	// Header-tagged query for the shut-off tenant: 429 + Retry-After.
	req, _ := http.NewRequest(http.MethodPost, c.Base+"/query",
		strings.NewReader(`{"sql":"SELECT COUNT(*) AS n FROM patient_info"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Raven-Tenant", "banned")
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("banned tenant: status %d, want 429", resp.StatusCode)
	}
	// A zero-quota shutoff is permanent: no Retry-After (hot-retrying a
	// reconfiguration-gated condition is pointless), unlike queue-full
	// 429s which do carry the hint.
	if h := resp.Header.Get("Retry-After"); h != "" {
		t.Fatalf("shutoff 429 carries Retry-After %q; the condition is not transient", h)
	}
	// The header also wins over a body tag.
	req2, _ := http.NewRequest(http.MethodPost, c.Base+"/query",
		strings.NewReader(`{"sql":"SELECT COUNT(*) AS n FROM patient_info","tenant":"batch"}`))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("X-Raven-Tenant", "banned")
	resp2, err := hc.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("header should override body tenant: status %d", resp2.StatusCode)
	}
	// A malformed priority header is a clean 400.
	req3, _ := http.NewRequest(http.MethodPost, c.Base+"/query",
		strings.NewReader(`{"sql":"SELECT COUNT(*) AS n FROM patient_info"}`))
	req3.Header.Set("Content-Type", "application/json")
	req3.Header.Set("X-Raven-Priority", "urgent")
	resp3, err := hc.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority header: status %d, want 400", resp3.StatusCode)
	}

	// Per-statement registration: prepared under "batch", executions
	// bill "batch" by default; a per-request header rebills the call.
	pr, err := c.Prepare(QueryRequest{SQL: countSQL, Tenant: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StmtQuery(pr.ID, QueryRequest{}); err != nil {
		t.Fatal(err)
	}
	req4, _ := http.NewRequest(http.MethodPost, c.Base+"/stmt/"+pr.ID+"/query",
		strings.NewReader(`{}`))
	req4.Header.Set("Content-Type", "application/json")
	req4.Header.Set("X-Raven-Tenant", "banned")
	resp4, err := hc.Do(req4)
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("stmt exec under banned override: status %d, want 429", resp4.StatusCode)
	}

	// DDL-only scripts bill their tenant too.
	if _, err := c.Query(QueryRequest{SQL: `CREATE TABLE tnt (k INT PRIMARY KEY)`, Tenant: "batch"}); err != nil {
		t.Fatal(err)
	}

	// Raw /stats JSON: the pre-tenant scheduler fields stay at the top
	// level of engine.scheduler (backward compatibility), and the new
	// per-tenant map nests beside them.
	sresp, err := hc.Get(c.Base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var raw struct {
		Server map[string]any `json:"server"`
		Engine struct {
			Scheduler map[string]json.RawMessage `json:"scheduler"`
		} `json:"engine"`
	}
	err = json.NewDecoder(sresp.Body).Decode(&raw)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"admitted", "rejected", "max_active", "max_concurrent", "queue_depth", "wait_histogram", "slots_in_use"} {
		if _, ok := raw.Engine.Scheduler[key]; !ok {
			t.Errorf("legacy scheduler field %q missing from /stats", key)
		}
	}
	var tenants map[string]raven.TenantStats
	if err := json.Unmarshal(raw.Engine.Scheduler["tenants"], &tenants); err != nil {
		t.Fatalf("scheduler.tenants: %v", err)
	}
	bt := tenants["batch"]
	// prepare (cost 1) + 2 SELECT executions + DDL script + body query.
	if bt.Admitted < 4 || !bt.Declared || bt.MaxConcurrent != 2 {
		t.Fatalf("batch tenant over the wire: %+v", bt)
	}
	if bn := tenants["banned"]; bn.Rejected < 3 || bn.Admitted != 0 {
		t.Fatalf("banned tenant over the wire: %+v", bn)
	}
	// The typed client still parses the response (shape compatibility).
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine.Scheduler == nil || st.Engine.Scheduler.Tenants["batch"].Admitted != bt.Admitted {
		t.Fatalf("typed stats: %+v", st.Engine.Scheduler)
	}
}

// TestRequestTagPresence pins the override semantics: absent priority
// falls through (prioritySet false), an explicit 0 — body pointer or
// header — is a real override, and headers beat body fields.
func TestRequestTagPresence(t *testing.T) {
	mk := func(hdr map[string]string) *http.Request {
		r, _ := http.NewRequest(http.MethodPost, "/stmt/s1/query", nil)
		for k, v := range hdr {
			r.Header.Set(k, v)
		}
		return r
	}
	cases := []struct {
		name     string
		req      QueryRequest
		hdr      map[string]string
		tenant   string
		priority int
		set      bool
	}{
		{"absent", QueryRequest{}, nil, "", 0, false},
		{"body zero is explicit", QueryRequest{Priority: IntPtr(0)}, nil, "", 0, true},
		{"header zero is explicit", QueryRequest{}, map[string]string{"X-Raven-Priority": "0"}, "", 0, true},
		{"header beats body", QueryRequest{Tenant: "a", Priority: IntPtr(3)},
			map[string]string{"X-Raven-Tenant": "b", "X-Raven-Priority": "9"}, "b", 9, true},
		{"body only", QueryRequest{Tenant: "a", Priority: IntPtr(3)}, nil, "a", 3, true},
		{"huge priority clamped", QueryRequest{}, map[string]string{"X-Raven-Priority": "1000000"}, "", maxWirePriority, true},
		{"huge negative clamped", QueryRequest{Priority: IntPtr(-1000000)}, nil, "", -maxWirePriority, true},
	}
	for _, c := range cases {
		tenant, priority, set, err := requestTag(mk(c.hdr), &c.req)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if tenant != c.tenant || priority != c.priority || set != c.set {
			t.Errorf("%s: got (%q, %d, %v), want (%q, %d, %v)", c.name, tenant, priority, set, c.tenant, c.priority, c.set)
		}
	}
	if _, _, _, err := requestTag(mk(map[string]string{"X-Raven-Priority": "high"}), &QueryRequest{}); err == nil {
		t.Error("malformed priority header accepted")
	}
}

// status extracts the HTTP status from a client error (0 otherwise).
func status(err error) int {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Status
	}
	return 0
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLegacyWireAliases pins the backward-compatibility contract of the
// reqopt migration: every pre-unification carrier — the JSON body
// fields (tenant/priority/no_cache/timeout_ms/options.parallelism) and
// the X-Raven-* headers — still works, with the documented precedence
// (headers > body), by sending raw JSON exactly as old clients encoded
// it.
func TestLegacyWireAliases(t *testing.T) {
	db := raven.MustOpen(raven.WithMaxConcurrentQueries(4))
	t.Cleanup(func() { db.Close() })
	if err := db.ExecContext(context.Background(),
		`CREATE TABLE legacy (a INT PRIMARY KEY); INSERT INTO legacy VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	c, _, hc := startServer(t, db, Options{})

	post := func(body string, hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("POST", c.Base+"/query", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := hc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Old-style body fields, verbatim raw JSON: all accepted, tenant
	// billed.
	resp := post(`{"sql":"SELECT a FROM legacy","tenant":"legacy-body","priority":2,"no_cache":true,"timeout_ms":5000,"options":{"parallelism":2}}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy body fields: status %d", resp.StatusCode)
	}
	if st := db.Stats().Scheduler; st == nil || st.Tenants["legacy-body"].Admitted == 0 {
		t.Fatalf("legacy body tenant not billed: %+v", db.Stats().Scheduler)
	}

	// Old-style headers still override the body fields.
	resp = post(`{"sql":"SELECT a FROM legacy","tenant":"body-loser","priority":1}`,
		map[string]string{"X-Raven-Tenant": "hdr-winner", "X-Raven-Priority": "3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy headers: status %d", resp.StatusCode)
	}
	st := db.Stats().Scheduler
	if st.Tenants["hdr-winner"].Admitted == 0 {
		t.Fatalf("header tenant did not win: %+v", st.Tenants)
	}
	if st.Tenants["body-loser"].Admitted != 0 {
		t.Fatalf("body tenant billed despite header override: %+v", st.Tenants)
	}

	// The unified surface's new headers work on the same request.
	resp = post(`{"sql":"SELECT a FROM legacy"}`,
		map[string]string{"X-Raven-DOP": "2", "X-Raven-Timeout-Ms": "5000", "X-Raven-No-Cache": "1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("new headers: status %d", resp.StatusCode)
	}

	// Malformed headers are 400s, not silent zeros.
	resp = post(`{"sql":"SELECT a FROM legacy"}`, map[string]string{"X-Raven-DOP": "many"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad DOP header: status %d", resp.StatusCode)
	}

	// Prepared path: prepare-time tenant still inherited at execution
	// when the request carries no tenant (the per-statement layer).
	pr, err := c.Prepare(QueryRequest{SQL: `SELECT a FROM legacy WHERE a > @n`, Tenant: "prep-tenant"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StmtQuery(pr.ID, QueryRequest{Params: map[string]string{"n": "0"}}); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Scheduler.Tenants["prep-tenant"].Admitted < 2 {
		t.Fatalf("prepared statement's registered tenant not inherited: %+v",
			db.Stats().Scheduler.Tenants)
	}
}
