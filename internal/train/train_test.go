package train

import (
	"math"
	"math/rand"
	"testing"

	"raven/internal/ml"
)

// synthBinary builds a linearly-separable-ish binary dataset where only the
// first two of d features matter.
func synthBinary(n, d int, seed int64) (ml.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n*d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := data[i*d : (i+1)*d]
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		z := 2*row[0] - 1.5*row[1] + 0.3*rng.NormFloat64()
		if z > 0 {
			y[i] = 1
		}
	}
	return ml.Matrix{Data: data, Rows: n, Cols: d}, y
}

func accuracy(pred, y []float64) float64 {
	correct := 0
	for i := range pred {
		p := 0.0
		if pred[i] > 0.5 {
			p = 1
		}
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

func TestFitTreeLearnsSignal(t *testing.T) {
	x, y := synthBinary(2000, 5, 1)
	tree := FitTree(x, y, TreeOptions{MaxDepth: 6, MinLeaf: 10})
	pred, err := tree.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(pred, y); acc < 0.85 {
		t.Errorf("tree training accuracy = %v, want >= 0.85", acc)
	}
	if tree.Depth() > 6 {
		t.Errorf("depth = %d exceeds max", tree.Depth())
	}
	// Informative features should dominate.
	uf := tree.UsedFeatures()
	if len(uf) == 0 || uf[0] != 0 {
		t.Errorf("UsedFeatures = %v", uf)
	}
}

func TestFitTreePureLeaves(t *testing.T) {
	// Constant labels -> single leaf.
	x, _ := synthBinary(100, 3, 2)
	y := make([]float64, 100)
	tree := FitTree(x, y, TreeOptions{})
	if tree.NumNodes() != 1 || !tree.Leaf(0) || tree.Value[0] != 0 {
		t.Errorf("constant-label tree has %d nodes", tree.NumNodes())
	}
}

func TestFitTreeRegression(t *testing.T) {
	// y = step function of x0.
	n := 1000
	data := make([]float64, n)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		data[i] = rng.Float64() * 10
		if data[i] > 5 {
			y[i] = 7
		} else {
			y[i] = 2
		}
	}
	x := ml.Matrix{Data: data, Rows: n, Cols: 1}
	tree := FitTree(x, y, TreeOptions{Regression: true, MaxDepth: 3, MinLeaf: 5})
	pred, _ := tree.Predict(x)
	var mse float64
	for i := range pred {
		d := pred[i] - y[i]
		mse += d * d
	}
	mse /= float64(n)
	if mse > 0.01 {
		t.Errorf("regression tree MSE = %v", mse)
	}
}

func TestFitForestBeatsOrMatchesSingleTreeShape(t *testing.T) {
	x, y := synthBinary(1500, 5, 4)
	forest := FitForest(x, y, ForestOptions{NumTrees: 8, Seed: 7, Tree: TreeOptions{MaxDepth: 6, MinLeaf: 10}})
	if len(forest.Trees) != 8 {
		t.Fatalf("NumTrees = %d", len(forest.Trees))
	}
	pred, err := forest.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(pred, y); acc < 0.85 {
		t.Errorf("forest accuracy = %v", acc)
	}
	// Determinism: same seed, same forest.
	forest2 := FitForest(x, y, ForestOptions{NumTrees: 8, Seed: 7, Tree: TreeOptions{MaxDepth: 6, MinLeaf: 10}})
	p2, _ := forest2.Predict(x)
	for i := range pred {
		if pred[i] != p2[i] {
			t.Fatal("forest training is not deterministic for fixed seed")
		}
	}
}

func TestFitLogRegAccuracyAndL1Sparsity(t *testing.T) {
	x, y := synthBinary(3000, 20, 5)
	dense := FitLogReg(x, y, LogRegOptions{Epochs: 15, Seed: 1})
	pred, err := dense.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(pred, y); acc < 0.9 {
		t.Errorf("dense logreg accuracy = %v", acc)
	}
	sparse := FitLogReg(x, y, LogRegOptions{Epochs: 15, Seed: 1, L1: 0.02})
	if sparse.Sparsity() <= dense.Sparsity() {
		t.Errorf("L1 did not increase sparsity: %v vs %v", sparse.Sparsity(), dense.Sparsity())
	}
	// Only 2 features carry signal; strong L1 should zero many of the 18
	// noise features.
	if sparse.Sparsity() < 0.5 {
		t.Errorf("sparsity = %v, want >= 0.5 on 90%% noise features", sparse.Sparsity())
	}
	sp, _ := sparse.Predict(x)
	if acc := accuracy(sp, y); acc < 0.85 {
		t.Errorf("sparse logreg accuracy = %v", acc)
	}
}

func TestAUC(t *testing.T) {
	// Perfect ranking.
	if got := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []float64{0, 0, 1, 1}); got != 1 {
		t.Errorf("perfect AUC = %v", got)
	}
	// Inverted ranking.
	if got := AUC([]float64{0.9, 0.8, 0.2, 0.1}, []float64{0, 0, 1, 1}); got != 0 {
		t.Errorf("inverted AUC = %v", got)
	}
	// All ties -> 0.5.
	if got := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []float64{0, 1, 0, 1}); got != 0.5 {
		t.Errorf("tied AUC = %v", got)
	}
	// Degenerate labels -> 0.5.
	if got := AUC([]float64{0.1, 0.9}, []float64{1, 1}); got != 0.5 {
		t.Errorf("single-class AUC = %v", got)
	}
}

func TestFitMLP(t *testing.T) {
	x, y := synthBinary(2000, 4, 6)
	m := FitMLP(x, y, MLPOptions{Hidden: []int{8}, Epochs: 8, LR: 0.05, Seed: 2, Classifier: true})
	pred, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(pred, y); acc < 0.85 {
		t.Errorf("mlp accuracy = %v", acc)
	}
	if m.Dims[0] != 4 || m.Dims[len(m.Dims)-1] != 1 {
		t.Errorf("dims = %v", m.Dims)
	}
}

func TestFitMLPRegression(t *testing.T) {
	// y = 3*x0, easy regression.
	n := 500
	data := make([]float64, n)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(9))
	for i := range data {
		data[i] = rng.Float64()
		y[i] = 3 * data[i]
	}
	x := ml.Matrix{Data: data, Rows: n, Cols: 1}
	m := FitMLP(x, y, MLPOptions{Hidden: []int{8}, Epochs: 40, LR: 0.05, Seed: 3})
	pred, _ := m.Predict(x)
	var mse float64
	for i := range pred {
		d := pred[i] - y[i]
		mse += d * d
	}
	mse /= float64(n)
	if mse > 0.05 {
		t.Errorf("mlp regression MSE = %v", mse)
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	// Two well-separated blobs.
	n := 400
	data := make([]float64, n*2)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		cx := 0.0
		if i >= n/2 {
			cx = 10
		}
		data[i*2] = cx + rng.NormFloat64()*0.5
		data[i*2+1] = rng.NormFloat64() * 0.5
	}
	x := ml.Matrix{Data: data, Rows: n, Cols: 2}
	km := FitKMeans(x, KMeansOptions{K: 2, Seed: 1})
	if km.K() != 2 {
		t.Fatalf("K = %d", km.K())
	}
	assign := km.Assign(x)
	// All first-half rows in one cluster, second half in the other.
	for i := 1; i < n/2; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("blob 1 split between clusters at %d", i)
		}
	}
	for i := n/2 + 1; i < n; i++ {
		if assign[i] != assign[n/2] {
			t.Fatalf("blob 2 split between clusters at %d", i)
		}
	}
	if assign[0] == assign[n/2] {
		t.Fatal("blobs merged")
	}
	if one := km.AssignOne(x.Row(0)); one != assign[0] {
		t.Error("AssignOne disagrees with Assign")
	}
}

func TestKMeansConstantFeatures(t *testing.T) {
	// Feature 1 is the cluster id itself: constant within each cluster.
	n := 200
	data := make([]float64, n*2)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < n; i++ {
		c := float64(i % 2)
		data[i*2] = c*20 + rng.NormFloat64()*0.1
		data[i*2+1] = c
	}
	x := ml.Matrix{Data: data, Rows: n, Cols: 2}
	km := FitKMeans(x, KMeansOptions{K: 2, Seed: 5})
	assign := km.Assign(x)
	consts := km.ConstantFeatures(x, assign, assign[0], 1e-9)
	v, ok := consts[1]
	if !ok {
		t.Fatalf("feature 1 should be constant in cluster, got %v", consts)
	}
	if v != 0 && v != 1 {
		t.Errorf("constant value = %v", v)
	}
	// Empty cluster id out of range -> empty map.
	if got := km.ConstantFeatures(x, assign, 99, 1e-9); len(got) != 0 {
		t.Errorf("empty cluster consts = %v", got)
	}
}

func TestKMeansMoreClustersThanRows(t *testing.T) {
	x := ml.Matrix{Data: []float64{1, 2, 3}, Rows: 3, Cols: 1}
	km := FitKMeans(x, KMeansOptions{K: 10, Seed: 1})
	if km.K() != 3 {
		t.Errorf("K clamped to %d, want 3", km.K())
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	n := 300
	rng := rand.New(rand.NewSource(17))
	data := make([]float64, n*2)
	for i := range data {
		data[i] = rng.Float64() * 100
	}
	x := ml.Matrix{Data: data, Rows: n, Cols: 2}
	inertia := func(km *KMeans) float64 {
		assign := km.Assign(x)
		var s float64
		for i := 0; i < n; i++ {
			c := assign[i]
			s += sqDist(x.Row(i), km.Centroids.Data[c*2:(c+1)*2])
		}
		return s
	}
	i2 := inertia(FitKMeans(x, KMeansOptions{K: 2, Seed: 3}))
	i8 := inertia(FitKMeans(x, KMeansOptions{K: 8, Seed: 3}))
	if !(i8 < i2) || math.IsNaN(i8) {
		t.Errorf("inertia did not decrease: k=2 %v, k=8 %v", i2, i8)
	}
}
