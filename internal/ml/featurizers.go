package ml

import (
	"fmt"
	"math"
)

// StandardScaler centers and scales every input column: (x - Mean) / Scale.
// Zero Scale entries pass through unscaled (constant columns), matching
// scikit-learn's behaviour.
type StandardScaler struct {
	Mean  []float64
	Scale []float64
}

// FitScaler computes per-column mean and standard deviation.
func FitScaler(in Matrix) *StandardScaler {
	d := in.Cols
	s := &StandardScaler{Mean: make([]float64, d), Scale: make([]float64, d)}
	n := float64(in.Rows)
	if n == 0 {
		for j := range s.Scale {
			s.Scale[j] = 1
		}
		return s
	}
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		for j, x := range row {
			s.Mean[j] += x
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		for j, x := range row {
			dx := x - s.Mean[j]
			s.Scale[j] += dx * dx
		}
	}
	for j := range s.Scale {
		s.Scale[j] = math.Sqrt(s.Scale[j] / n)
		if s.Scale[j] == 0 {
			s.Scale[j] = 1
		}
	}
	return s
}

// Transform implements Transformer.
func (s *StandardScaler) Transform(in Matrix) (Matrix, error) {
	if in.Cols != len(s.Mean) {
		return Matrix{}, fmt.Errorf("ml: scaler fitted on %d cols, input has %d", len(s.Mean), in.Cols)
	}
	out := make([]float64, len(in.Data))
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		orow := out[i*in.Cols : (i+1)*in.Cols]
		for j, x := range row {
			orow[j] = (x - s.Mean[j]) / s.Scale[j]
		}
	}
	return Matrix{Data: out, Rows: in.Rows, Cols: in.Cols}, nil
}

// TransformInto implements TransformerInto: same per-element scaling as
// Transform, writing into dst. dst may alias in.Data (the op is
// elementwise).
func (s *StandardScaler) TransformInto(in Matrix, dst []float64) (Matrix, error) {
	if in.Cols != len(s.Mean) {
		return Matrix{}, fmt.Errorf("ml: scaler fitted on %d cols, input has %d", len(s.Mean), in.Cols)
	}
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		orow := dst[i*in.Cols : (i+1)*in.Cols]
		for j, x := range row {
			orow[j] = (x - s.Mean[j]) / s.Scale[j]
		}
	}
	return Matrix{Data: dst[:in.Rows*in.Cols], Rows: in.Rows, Cols: in.Cols}, nil
}

// OutputDim implements Transformer.
func (s *StandardScaler) OutputDim(d int) (int, error) {
	if d != len(s.Mean) {
		return 0, fmt.Errorf("ml: scaler fitted on %d cols, input has %d", len(s.Mean), d)
	}
	return d, nil
}

// Kind implements Transformer.
func (s *StandardScaler) Kind() string { return "scaler" }

// OneHotEncoder expands categorical columns (given by ordinal) into
// indicator blocks; non-categorical columns pass through in their original
// relative order, before the indicator blocks (matching a ColumnTransformer
// with passthrough remainder placed first).
type OneHotEncoder struct {
	// Cols are the input column ordinals that are categorical.
	Cols []int
	// Categories[i] lists the category values (as float codes) of Cols[i];
	// an input value equal to Categories[i][k] lights indicator k.
	Categories [][]float64
	// InputDim is the fitted input width (0 when hand-built, in which case
	// consumers infer the width from usage).
	InputDim int
}

// FitOneHot scans the matrix and collects the distinct values of each
// categorical column, sorted ascending.
func FitOneHot(in Matrix, cols []int) *OneHotEncoder {
	enc := &OneHotEncoder{Cols: append([]int(nil), cols...), InputDim: in.Cols}
	for _, c := range cols {
		seen := make(map[float64]bool)
		for i := 0; i < in.Rows; i++ {
			seen[in.At(i, c)] = true
		}
		var cats []float64
		for v := range seen {
			cats = append(cats, v)
		}
		// insertion sort (small category sets)
		for i := 1; i < len(cats); i++ {
			for j := i; j > 0 && cats[j] < cats[j-1]; j-- {
				cats[j], cats[j-1] = cats[j-1], cats[j]
			}
		}
		enc.Categories = append(enc.Categories, cats)
	}
	return enc
}

func (e *OneHotEncoder) isCategorical(col int) int {
	for i, c := range e.Cols {
		if c == col {
			return i
		}
	}
	return -1
}

// OutputDim implements Transformer.
func (e *OneHotEncoder) OutputDim(d int) (int, error) {
	out := d - len(e.Cols)
	if out < 0 {
		return 0, fmt.Errorf("ml: onehot has %d categorical cols, input only %d", len(e.Cols), d)
	}
	for _, cats := range e.Categories {
		out += len(cats)
	}
	return out, nil
}

// Transform implements Transformer.
func (e *OneHotEncoder) Transform(in Matrix) (Matrix, error) {
	outD, err := e.OutputDim(in.Cols)
	if err != nil {
		return Matrix{}, err
	}
	for _, c := range e.Cols {
		if c >= in.Cols {
			return Matrix{}, fmt.Errorf("ml: onehot col %d out of range (input width %d)", c, in.Cols)
		}
	}
	out := make([]float64, in.Rows*outD)
	// layout: passthrough columns first (original order), then one
	// indicator block per categorical column in e.Cols order.
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		orow := out[i*outD : (i+1)*outD]
		pos := 0
		for j, x := range row {
			if e.isCategorical(j) < 0 {
				orow[pos] = x
				pos++
			}
		}
		for ci, c := range e.Cols {
			cats := e.Categories[ci]
			x := row[c]
			for k, v := range cats {
				if x == v {
					orow[pos+k] = 1
					break
				}
			}
			pos += len(cats)
		}
	}
	return Matrix{Data: out, Rows: in.Rows, Cols: outD}, nil
}

// TransformInto implements TransformerInto. dst must not alias in.Data
// (the encoding widens rows).
func (e *OneHotEncoder) TransformInto(in Matrix, dst []float64) (Matrix, error) {
	outD, err := e.OutputDim(in.Cols)
	if err != nil {
		return Matrix{}, err
	}
	for _, c := range e.Cols {
		if c >= in.Cols {
			return Matrix{}, fmt.Errorf("ml: onehot col %d out of range (input width %d)", c, in.Cols)
		}
	}
	out := dst[:in.Rows*outD]
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		orow := out[i*outD : (i+1)*outD]
		pos := 0
		for j, x := range row {
			if e.isCategorical(j) < 0 {
				orow[pos] = x
				pos++
			}
		}
		for ci, c := range e.Cols {
			cats := e.Categories[ci]
			x := row[c]
			for k, v := range cats {
				if x == v {
					orow[pos+k] = 1
					break
				}
			}
			pos += len(cats)
		}
	}
	return Matrix{Data: out, Rows: in.Rows, Cols: outD}, nil
}

// Kind implements Transformer.
func (e *OneHotEncoder) Kind() string { return "onehot" }

// OutputIndexOfCategory returns the output ordinal of the indicator for
// (inputCol, category). Used by predicate-based pruning: a selection
// "dest = X" pins that indicator to 1 and all siblings to 0 (paper §4.1).
// inputDim is the width of the encoder's input.
func (e *OneHotEncoder) OutputIndexOfCategory(inputDim, inputCol int, category float64) (int, error) {
	ci := e.isCategorical(inputCol)
	if ci < 0 {
		return -1, fmt.Errorf("ml: column %d is not categorical", inputCol)
	}
	pos := inputDim - len(e.Cols) // passthrough block width
	for k := 0; k < ci; k++ {
		pos += len(e.Categories[k])
	}
	for k, v := range e.Categories[ci] {
		if v == category {
			return pos + k, nil
		}
	}
	return -1, fmt.Errorf("ml: category %v unknown for column %d", category, inputCol)
}

// IndicatorRange returns the [lo, hi) output ordinals of inputCol's
// indicator block.
func (e *OneHotEncoder) IndicatorRange(inputDim, inputCol int) (lo, hi int, err error) {
	ci := e.isCategorical(inputCol)
	if ci < 0 {
		return 0, 0, fmt.Errorf("ml: column %d is not categorical", inputCol)
	}
	pos := inputDim - len(e.Cols)
	for k := 0; k < ci; k++ {
		pos += len(e.Categories[k])
	}
	return pos, pos + len(e.Categories[ci]), nil
}

// PassthroughOutputIndex maps a non-categorical input column to its output
// ordinal.
func (e *OneHotEncoder) PassthroughOutputIndex(inputCol int) (int, error) {
	if e.isCategorical(inputCol) >= 0 {
		return -1, fmt.Errorf("ml: column %d is categorical, not passthrough", inputCol)
	}
	pos := 0
	for j := 0; j < inputCol; j++ {
		if e.isCategorical(j) < 0 {
			pos++
		}
	}
	return pos, nil
}

// ColumnSelect projects a subset of input columns, in the given order. The
// cross optimizer inserts these when model-projection pushdown drops
// features.
type ColumnSelect struct {
	Indices []int
}

// Transform implements Transformer.
func (c *ColumnSelect) Transform(in Matrix) (Matrix, error) {
	for _, j := range c.Indices {
		if j < 0 || j >= in.Cols {
			return Matrix{}, fmt.Errorf("ml: select index %d out of range (width %d)", j, in.Cols)
		}
	}
	out := make([]float64, in.Rows*len(c.Indices))
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		orow := out[i*len(c.Indices) : (i+1)*len(c.Indices)]
		for k, j := range c.Indices {
			orow[k] = row[j]
		}
	}
	return Matrix{Data: out, Rows: in.Rows, Cols: len(c.Indices)}, nil
}

// TransformInto implements TransformerInto. dst must not alias in.Data.
func (c *ColumnSelect) TransformInto(in Matrix, dst []float64) (Matrix, error) {
	for _, j := range c.Indices {
		if j < 0 || j >= in.Cols {
			return Matrix{}, fmt.Errorf("ml: select index %d out of range (width %d)", j, in.Cols)
		}
	}
	out := dst[:in.Rows*len(c.Indices)]
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		orow := out[i*len(c.Indices) : (i+1)*len(c.Indices)]
		for k, j := range c.Indices {
			orow[k] = row[j]
		}
	}
	return Matrix{Data: out, Rows: in.Rows, Cols: len(c.Indices)}, nil
}

// OutputDim implements Transformer.
func (c *ColumnSelect) OutputDim(d int) (int, error) { return len(c.Indices), nil }

// Kind implements Transformer.
func (c *ColumnSelect) Kind() string { return "select" }

// FeatureUnion applies each part to the same input and concatenates the
// outputs column-wise — scikit-learn's FeatureUnion, used by the paper's
// running example (Fig 1).
type FeatureUnion struct {
	Parts []Transformer
}

// Transform implements Transformer.
func (u *FeatureUnion) Transform(in Matrix) (Matrix, error) {
	outs := make([]Matrix, len(u.Parts))
	total := 0
	for i, p := range u.Parts {
		o, err := p.Transform(in)
		if err != nil {
			return Matrix{}, fmt.Errorf("ml: union part %d (%s): %w", i, p.Kind(), err)
		}
		outs[i] = o
		total += o.Cols
	}
	data := make([]float64, in.Rows*total)
	for i := 0; i < in.Rows; i++ {
		pos := i * total
		for _, o := range outs {
			copy(data[pos:pos+o.Cols], o.Row(i))
			pos += o.Cols
		}
	}
	return Matrix{Data: data, Rows: in.Rows, Cols: total}, nil
}

// OutputDim implements Transformer.
func (u *FeatureUnion) OutputDim(d int) (int, error) {
	total := 0
	for _, p := range u.Parts {
		o, err := p.OutputDim(d)
		if err != nil {
			return 0, err
		}
		total += o
	}
	return total, nil
}

// Kind implements Transformer.
func (u *FeatureUnion) Kind() string { return "union" }
