// Package types defines the columnar data model shared by the relational
// engine and the ML runtimes: data types, schemas, typed vectors and
// batches. Execution is vectorized: operators exchange Batch values holding
// a fixed number of rows in columnar form.
package types

import (
	"fmt"
	"slices"
	"strings"
	"sync"
)

// DataType enumerates the column types supported by the engine.
type DataType uint8

const (
	// Unknown is the zero DataType; it is never valid in a bound schema.
	Unknown DataType = iota
	// Float is a 64-bit IEEE float (SQL FLOAT).
	Float
	// Int is a 64-bit signed integer (SQL BIGINT).
	Int
	// Bool is a boolean (SQL BIT).
	Bool
	// String is a variable-length UTF-8 string (SQL VARCHAR).
	String
)

// String implements fmt.Stringer.
func (t DataType) String() string {
	switch t {
	case Float:
		return "FLOAT"
	case Int:
		return "INT"
	case Bool:
		return "BOOL"
	case String:
		return "VARCHAR"
	default:
		return "UNKNOWN"
	}
}

// IsNumeric reports whether t can participate in arithmetic.
func (t DataType) IsNumeric() bool { return t == Float || t == Int }

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Type DataType
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column

	// ordOnce guards the lazily built lowered-name→ordinal map behind
	// IndexOf. Schemas are shared read-only across worker goroutines, so
	// the map is built at most once and then read without locks.
	ordOnce sync.Once
	ord     map[string]int
}

// NewSchema builds a schema from (name, type) pairs.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// ordinals returns the lowered-name→ordinal map, building it on first use.
// On duplicate names the first ordinal wins, matching the linear scan this
// map replaced.
func (s *Schema) ordinals() map[string]int {
	s.ordOnce.Do(func() {
		m := make(map[string]int, len(s.Columns))
		for i, c := range s.Columns {
			k := strings.ToLower(c.Name)
			if _, dup := m[k]; !dup {
				m[k] = i
			}
		}
		s.ord = m
	})
	return s.ord
}

// IndexOf returns the ordinal of the named column, or -1 if absent.
// Lookup is case-insensitive, matching SQL identifier semantics.
func (s *Schema) IndexOf(name string) int {
	m := s.ordinals()
	if i, ok := m[name]; ok {
		return i
	}
	// Identifiers are usually stored and looked up in lower case already;
	// strings.ToLower returns its input unchanged (no allocation) then.
	if i, ok := m[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Column returns the i-th column descriptor.
func (s *Schema) Column(i int) Column { return s.Columns[i] }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	return &Schema{Columns: cols}
}

// Project returns a new schema containing the columns at the given ordinals.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Columns[j]
	}
	return &Schema{Columns: cols}
}

// Concat returns a schema with the columns of s followed by those of other.
func (s *Schema) Concat(other *Schema) *Schema {
	cols := make([]Column, 0, len(s.Columns)+len(other.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, other.Columns...)
	return &Schema{Columns: cols}
}

// String renders the schema as "(a FLOAT, b INT)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Vector is a typed column of values. Exactly one of the data slices is
// populated, chosen by Type. NULL rows are tracked by a word-packed
// validity bitmap (NullBits); Const marks a broadcast vector carrying one
// physical row that logically repeats.
type Vector struct {
	Type    DataType
	Floats  []float64
	Ints    []int64
	Bools   []bool
	Strings []string
	// NullBits is the packed null mask: bit i (word i>>6, bit i&63) is set
	// when row i is NULL. A nil or short bitmap means the uncovered rows
	// are not NULL. Exported so vectors survive the gob wire used by
	// out-of-process inference.
	NullBits []uint64
	// Const marks a broadcast vector: one physical row that logically
	// repeats Length times. Only expression evaluation produces const
	// vectors; they are densified (see Densify) before reaching code that
	// indexes the data slices directly.
	Const bool
	// Length is the logical row count of a Const vector; unused otherwise.
	Length int

	// pooled marks vectors checked out of the vector pool. PutVector only
	// recycles pooled vectors, so storage-owned or escaped vectors can
	// never be recycled by a stray Put.
	pooled bool
}

// NewVector allocates a vector of the given type with length n.
func NewVector(t DataType, n int) *Vector {
	v := &Vector{Type: t}
	switch t {
	case Float:
		v.Floats = make([]float64, n)
	case Int:
		v.Ints = make([]int64, n)
	case Bool:
		v.Bools = make([]bool, n)
	case String:
		v.Strings = make([]string, n)
	default:
		panic(fmt.Sprintf("types: NewVector of %v", t))
	}
	return v
}

// Len returns the number of logical rows in the vector.
func (v *Vector) Len() int {
	if v.Const {
		return v.Length
	}
	switch v.Type {
	case Float:
		return len(v.Floats)
	case Int:
		return len(v.Ints)
	case Bool:
		return len(v.Bools)
	case String:
		return len(v.Strings)
	default:
		return 0
	}
}

// phys maps a logical row index to a physical one: broadcast vectors hold
// a single physical row.
func (v *Vector) phys(i int) int {
	if v.Const {
		return 0
	}
	return i
}

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool {
	i = v.phys(i)
	w := uint(i) >> 6
	return w < uint(len(v.NullBits)) && v.NullBits[w]&(1<<(uint(i)&63)) != 0
}

// HasNulls reports whether any row of v is NULL.
func (v *Vector) HasNulls() bool {
	n := v.Len()
	if v.Const {
		n = 1
	}
	for w, word := range v.NullBits {
		// Mask bits beyond the logical length: zero-copy slices share
		// whole words with their parent, so trailing bits may belong to
		// rows outside this vector.
		if hi := n - w*64; hi < 64 {
			if hi <= 0 {
				return false
			}
			word &= (1 << uint(hi)) - 1
		}
		if word != 0 {
			return true
		}
	}
	return false
}

// growNulls ensures the bitmap covers at least rows rows, zeroing any
// newly exposed words.
func (v *Vector) growNulls(rows int) {
	w := (rows + 63) >> 6
	if w <= len(v.NullBits) {
		return
	}
	if cap(v.NullBits) >= w {
		old := len(v.NullBits)
		v.NullBits = v.NullBits[:w]
		for i := old; i < w; i++ {
			v.NullBits[i] = 0
		}
		return
	}
	nb := make([]uint64, w)
	copy(nb, v.NullBits)
	v.NullBits = nb
}

// SetNull marks row i as NULL, growing the bitmap lazily.
func (v *Vector) SetNull(i int) {
	i = v.phys(i)
	v.growNulls(i + 1)
	v.NullBits[uint(i)>>6] |= 1 << (uint(i) & 63)
}

// Value returns row i as an interface value (nil when NULL). Intended for
// tests, result rendering and row-at-a-time UDFs, not the hot path.
func (v *Vector) Value(i int) any {
	if v.IsNull(i) {
		return nil
	}
	i = v.phys(i)
	switch v.Type {
	case Float:
		return v.Floats[i]
	case Int:
		return v.Ints[i]
	case Bool:
		return v.Bools[i]
	case String:
		return v.Strings[i]
	default:
		return nil
	}
}

// AsFloat returns row i coerced to float64. Bool maps to 0/1.
func (v *Vector) AsFloat(i int) float64 {
	i = v.phys(i)
	switch v.Type {
	case Float:
		return v.Floats[i]
	case Int:
		return float64(v.Ints[i])
	case Bool:
		if v.Bools[i] {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// FloatAt returns row i of a FLOAT vector, resolving broadcast.
func (v *Vector) FloatAt(i int) float64 { return v.Floats[v.phys(i)] }

// IntAt returns row i of an INT vector, resolving broadcast.
func (v *Vector) IntAt(i int) int64 { return v.Ints[v.phys(i)] }

// BoolAt returns row i of a BOOL vector, resolving broadcast.
func (v *Vector) BoolAt(i int) bool { return v.Bools[v.phys(i)] }

// StringAt returns row i of a VARCHAR vector, resolving broadcast.
func (v *Vector) StringAt(i int) string { return v.Strings[v.phys(i)] }

// Append adds a raw Go value to the vector, converting compatible types.
func (v *Vector) Append(val any) error {
	switch v.Type {
	case Float:
		switch x := val.(type) {
		case float64:
			v.Floats = append(v.Floats, x)
		case int64:
			v.Floats = append(v.Floats, float64(x))
		case int:
			v.Floats = append(v.Floats, float64(x))
		default:
			return fmt.Errorf("types: cannot append %T to FLOAT vector", val)
		}
	case Int:
		switch x := val.(type) {
		case int64:
			v.Ints = append(v.Ints, x)
		case int:
			v.Ints = append(v.Ints, int64(x))
		default:
			return fmt.Errorf("types: cannot append %T to INT vector", val)
		}
	case Bool:
		x, ok := val.(bool)
		if !ok {
			return fmt.Errorf("types: cannot append %T to BOOL vector", val)
		}
		v.Bools = append(v.Bools, x)
	case String:
		x, ok := val.(string)
		if !ok {
			return fmt.Errorf("types: cannot append %T to VARCHAR vector", val)
		}
		v.Strings = append(v.Strings, x)
	default:
		return fmt.Errorf("types: append to vector of unknown type")
	}
	// Non-NULL appends need no bitmap update: rows beyond the bitmap read
	// as valid.
	return nil
}

// AppendFloats bulk-appends xs to a FLOAT vector.
func (v *Vector) AppendFloats(xs []float64) { v.Floats = append(v.Floats, xs...) }

// AppendInts bulk-appends xs to an INT vector.
func (v *Vector) AppendInts(xs []int64) { v.Ints = append(v.Ints, xs...) }

// AppendBools bulk-appends xs to a BOOL vector.
func (v *Vector) AppendBools(xs []bool) { v.Bools = append(v.Bools, xs...) }

// AppendStrings bulk-appends xs to a VARCHAR vector.
func (v *Vector) AppendStrings(xs []string) { v.Strings = append(v.Strings, xs...) }

// resize returns s with length n, reusing capacity when possible. The
// exposed values are unspecified.
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// SetLen resizes the active data slice to n rows, reusing capacity. The
// exposed values are unspecified and the null mask is cleared; kernels
// call this on pooled outputs they fully overwrite.
func (v *Vector) SetLen(n int) {
	switch v.Type {
	case Float:
		v.Floats = resize(v.Floats, n)
	case Int:
		v.Ints = resize(v.Ints, n)
	case Bool:
		v.Bools = resize(v.Bools, n)
	case String:
		v.Strings = resize(v.Strings, n)
	default:
		panic(fmt.Sprintf("types: SetLen of %v", v.Type))
	}
	v.NullBits = v.NullBits[:0]
	v.Const = false
	v.Length = 0
}

// Reset truncates v to zero rows, keeping allocated capacity (string
// references are retained until overwritten; PutVector clears them).
func (v *Vector) Reset() {
	v.Floats = v.Floats[:0]
	v.Ints = v.Ints[:0]
	v.Bools = v.Bools[:0]
	v.Strings = v.Strings[:0]
	v.NullBits = v.NullBits[:0]
	v.Const = false
	v.Length = 0
}

// MarkConst turns v into a broadcast vector of logical length n. The
// caller must have stored exactly one physical row.
func (v *Vector) MarkConst(n int) {
	v.Const = true
	v.Length = n
}

// Disown clears the pooled mark: the vector is escaping into a result
// batch, so no later Put may ever recycle it.
func (v *Vector) Disown() { v.pooled = false }

// Grow reserves capacity for at least n additional rows in the active
// data slice, so a bulk append loop reallocates at most once.
func (v *Vector) Grow(n int) {
	switch v.Type {
	case Float:
		v.Floats = slices.Grow(v.Floats, n)
	case Int:
		v.Ints = slices.Grow(v.Ints, n)
	case Bool:
		v.Bools = slices.Grow(v.Bools, n)
	case String:
		v.Strings = slices.Grow(v.Strings, n)
	}
}

// sliceNulls extracts the bitmap for rows [lo, hi). Word-aligned slices
// share the parent's words zero-copy; unaligned ones (odd morsel sizes)
// rebuild the mask.
func sliceNulls(bits []uint64, lo, hi int) []uint64 {
	if len(bits) == 0 || hi <= lo {
		return nil
	}
	if lo&63 == 0 {
		w := lo >> 6
		if w >= len(bits) {
			return nil
		}
		end := (hi + 63) >> 6
		if end > len(bits) {
			end = len(bits)
		}
		return bits[w:end]
	}
	var out []uint64
	for i := lo; i < hi; i++ {
		w := uint(i) >> 6
		if w < uint(len(bits)) && bits[w]&(1<<(uint(i)&63)) != 0 {
			if out == nil {
				out = make([]uint64, (hi-lo+63)>>6)
			}
			out[uint(i-lo)>>6] |= 1 << (uint(i-lo) & 63)
		}
	}
	return out
}

// Slice returns a zero-copy view of rows [lo, hi).
func (v *Vector) Slice(lo, hi int) *Vector {
	out := &Vector{}
	v.SliceInto(out, lo, hi)
	return out
}

// SliceInto points dst at rows [lo, hi) of v without copying data,
// reusing dst's header. dst is unpooled afterwards: a view over shared
// storage must never be recycled.
func (v *Vector) SliceInto(dst *Vector, lo, hi int) {
	dst.Type = v.Type
	dst.pooled = false
	dst.Floats, dst.Ints, dst.Bools, dst.Strings = nil, nil, nil, nil
	if v.Const {
		dst.Const = true
		dst.Length = hi - lo
		dst.Floats, dst.Ints, dst.Bools, dst.Strings = v.Floats, v.Ints, v.Bools, v.Strings
		dst.NullBits = v.NullBits
		return
	}
	dst.Const = false
	dst.Length = 0
	switch v.Type {
	case Float:
		dst.Floats = v.Floats[lo:hi]
	case Int:
		dst.Ints = v.Ints[lo:hi]
	case Bool:
		dst.Bools = v.Bools[lo:hi]
	case String:
		dst.Strings = v.Strings[lo:hi]
	}
	dst.NullBits = sliceNulls(v.NullBits, lo, hi)
}

// Gather returns a new vector with rows picked by sel, in order.
func (v *Vector) Gather(sel []int) *Vector {
	out := &Vector{Type: v.Type}
	v.GatherInto(out, sel)
	return out
}

// GatherInto overwrites dst with the rows of v picked by sel, reusing
// dst's capacity. dst must not alias v.
func (v *Vector) GatherInto(dst *Vector, sel []int) {
	dst.Type = v.Type
	dst.Const = false
	dst.Length = 0
	dst.NullBits = dst.NullBits[:0]
	n := len(sel)
	if v.Const {
		// Gathering a broadcast repeats its single physical row.
		switch v.Type {
		case Float:
			dst.Floats = resize(dst.Floats, n)
			x := v.Floats[0]
			for i := range dst.Floats {
				dst.Floats[i] = x
			}
		case Int:
			dst.Ints = resize(dst.Ints, n)
			x := v.Ints[0]
			for i := range dst.Ints {
				dst.Ints[i] = x
			}
		case Bool:
			dst.Bools = resize(dst.Bools, n)
			x := v.Bools[0]
			for i := range dst.Bools {
				dst.Bools[i] = x
			}
		case String:
			dst.Strings = resize(dst.Strings, n)
			x := v.Strings[0]
			for i := range dst.Strings {
				dst.Strings[i] = x
			}
		}
		if v.IsNull(0) {
			for i := 0; i < n; i++ {
				dst.SetNull(i)
			}
		}
		return
	}
	switch v.Type {
	case Float:
		dst.Floats = resize(dst.Floats, n)
		for i, j := range sel {
			dst.Floats[i] = v.Floats[j]
		}
	case Int:
		dst.Ints = resize(dst.Ints, n)
		for i, j := range sel {
			dst.Ints[i] = v.Ints[j]
		}
	case Bool:
		dst.Bools = resize(dst.Bools, n)
		for i, j := range sel {
			dst.Bools[i] = v.Bools[j]
		}
	case String:
		dst.Strings = resize(dst.Strings, n)
		for i, j := range sel {
			dst.Strings[i] = v.Strings[j]
		}
	}
	if v.HasNulls() {
		for i, j := range sel {
			if v.IsNull(j) {
				dst.SetNull(i)
			}
		}
	}
}

// Densify returns v itself when dense, or a materialized copy of a
// broadcast vector with every logical row filled in.
func (v *Vector) Densify() *Vector {
	if !v.Const {
		return v
	}
	n := v.Length
	out := NewVector(v.Type, n)
	switch v.Type {
	case Float:
		x := v.Floats[0]
		for i := range out.Floats {
			out.Floats[i] = x
		}
	case Int:
		x := v.Ints[0]
		for i := range out.Ints {
			out.Ints[i] = x
		}
	case Bool:
		x := v.Bools[0]
		for i := range out.Bools {
			out.Bools[i] = x
		}
	case String:
		x := v.Strings[0]
		for i := range out.Strings {
			out.Strings[i] = x
		}
	}
	if v.IsNull(0) {
		for i := 0; i < n; i++ {
			out.SetNull(i)
		}
	}
	return out
}

// AppendFrom appends row i of src (same type) to v without boxing the
// value — the hot path of streaming merges that interleave rows from
// many source batches.
func (v *Vector) AppendFrom(src *Vector, i int) {
	null := src.IsNull(i)
	i = src.phys(i)
	n := v.Len()
	switch v.Type {
	case Float:
		v.Floats = append(v.Floats, src.Floats[i])
	case Int:
		v.Ints = append(v.Ints, src.Ints[i])
	case Bool:
		v.Bools = append(v.Bools, src.Bools[i])
	case String:
		v.Strings = append(v.Strings, src.Strings[i])
	}
	if null {
		v.SetNull(n)
	}
}

// AppendVector appends all rows of src (same type) to v.
func (v *Vector) AppendVector(src *Vector) error {
	if v.Type != src.Type {
		return fmt.Errorf("types: append %v vector to %v vector", src.Type, v.Type)
	}
	n := v.Len()
	m := src.Len()
	if src.Const {
		switch v.Type {
		case Float:
			x := src.Floats[0]
			for k := 0; k < m; k++ {
				v.Floats = append(v.Floats, x)
			}
		case Int:
			x := src.Ints[0]
			for k := 0; k < m; k++ {
				v.Ints = append(v.Ints, x)
			}
		case Bool:
			x := src.Bools[0]
			for k := 0; k < m; k++ {
				v.Bools = append(v.Bools, x)
			}
		case String:
			x := src.Strings[0]
			for k := 0; k < m; k++ {
				v.Strings = append(v.Strings, x)
			}
		}
		if src.IsNull(0) {
			for k := 0; k < m; k++ {
				v.SetNull(n + k)
			}
		}
		return nil
	}
	switch v.Type {
	case Float:
		v.Floats = append(v.Floats, src.Floats...)
	case Int:
		v.Ints = append(v.Ints, src.Ints...)
	case Bool:
		v.Bools = append(v.Bools, src.Bools...)
	case String:
		v.Strings = append(v.Strings, src.Strings...)
	}
	if src.HasNulls() {
		v.growNulls(n + m)
		for i := 0; i < m; i++ {
			if src.IsNull(i) {
				v.NullBits[uint(n+i)>>6] |= 1 << (uint(n+i) & 63)
			}
		}
	}
	return nil
}

// ConstFloat builds a broadcast FLOAT vector: one physical row repeated n
// times logically.
func ConstFloat(x float64, n int) *Vector {
	return &Vector{Type: Float, Floats: []float64{x}, Const: true, Length: n}
}

// ConstInt builds a broadcast INT vector of logical length n.
func ConstInt(x int64, n int) *Vector {
	return &Vector{Type: Int, Ints: []int64{x}, Const: true, Length: n}
}

// ConstBool builds a broadcast BOOL vector of logical length n.
func ConstBool(x bool, n int) *Vector {
	return &Vector{Type: Bool, Bools: []bool{x}, Const: true, Length: n}
}

// ConstString builds a broadcast VARCHAR vector of logical length n.
func ConstString(x string, n int) *Vector {
	return &Vector{Type: String, Strings: []string{x}, Const: true, Length: n}
}
