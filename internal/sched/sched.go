// Package sched is the admission-controlled query scheduler behind the
// serving front end. It bounds how much of the engine a burst of
// concurrent queries can claim: each query is admitted with a weighted
// cost — its effective degree of parallelism, i.e. the number of
// morsel-exchange worker slots it may occupy — against a budget of
// concurrent queries and total worker slots. Queries that do not fit wait
// in a bounded FIFO queue with per-query timeouts and context
// cancellation; queries that cannot even queue are rejected immediately,
// giving clients a clean load-shedding signal instead of a collapsing
// server.
//
// The scheduler is deliberately engine-agnostic: it hands out admission
// tickets (release functions), never goroutines, so raven.DB can gate
// Query/Stmt.Query with one Acquire call and release on Rows.Close.
package sched

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Admission failure modes. Servers map these to distinct status codes
// (rejected ≠ timed out), so they are sentinel errors, not strings.
var (
	// ErrQueueFull means the query could not even wait: the scheduler is at
	// its concurrency limit and the queue is at capacity. Clients should
	// back off and retry.
	ErrQueueFull = errors.New("sched: admission queue full")
	// ErrQueueTimeout means the query waited its full queue timeout
	// without being admitted.
	ErrQueueTimeout = errors.New("sched: timed out waiting for admission")
	// ErrDraining means the scheduler is shutting down and admits nothing.
	ErrDraining = errors.New("sched: scheduler is draining")
)

// Options configures a Scheduler.
type Options struct {
	// MaxConcurrent is the maximum number of queries running at once.
	// Values < 1 are treated as 1.
	MaxConcurrent int
	// MaxSlots bounds the total worker slots across all running queries,
	// where a query's cost is its effective DOP. 0 disables the slot
	// budget (only MaxConcurrent limits). A query costing more than
	// MaxSlots is clamped to MaxSlots so it can still run (alone).
	MaxSlots int
	// QueueDepth is how many queries may wait for admission. 0 means no
	// queue: anything over MaxConcurrent is rejected immediately.
	QueueDepth int
	// QueueTimeout bounds how long one query waits in the queue before
	// failing with ErrQueueTimeout. 0 means wait until the query's own
	// context expires.
	QueueTimeout time.Duration
}

// waitBuckets are the upper bounds (exclusive) of the queue-wait
// histogram, in the order Stats.WaitHistogram reports them; a wait at or
// past the last bound lands in the final unbounded bucket.
var waitBuckets = []time.Duration{
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// WaitBucketLabels names the histogram buckets, aligned with
// Stats.WaitHistogram.
var WaitBucketLabels = []string{"<1ms", "<10ms", "<100ms", "<1s", ">=1s"}

// Stats is a point-in-time snapshot of the scheduler's counters and
// gauges.
type Stats struct {
	// Cumulative counters.
	Admitted  uint64 `json:"admitted"`  // queries admitted (incl. after queueing)
	Queued    uint64 `json:"queued"`    // queries that had to wait before admission or failure
	Rejected  uint64 `json:"rejected"`  // ErrQueueFull
	TimedOut  uint64 `json:"timed_out"` // ErrQueueTimeout
	Cancelled uint64 `json:"cancelled"` // context cancelled/expired while waiting
	Drained   uint64 `json:"drained"`   // waiters failed by Drain

	// Gauges.
	Active     int `json:"active"`       // queries running now
	Waiting    int `json:"waiting"`      // queries queued now
	SlotsInUse int `json:"slots_in_use"` // worker slots held by running queries

	// High-water marks since construction: the acceptance check that
	// admission control actually bounded concurrency.
	MaxActive     int `json:"max_active"`
	MaxSlotsInUse int `json:"max_slots_in_use"`

	// WaitHistogram counts admitted-after-queueing queries by queue wait,
	// bucketed per WaitBucketLabels. TotalWait sums every queue wait
	// (admitted or not), for mean-wait computation.
	WaitHistogram [5]uint64     `json:"wait_histogram"`
	TotalWait     time.Duration `json:"total_wait_ns"`

	Draining bool `json:"draining"`

	// Limits echo the configuration so /stats is self-describing.
	MaxConcurrent int `json:"max_concurrent"`
	MaxSlots      int `json:"max_slots"`
	QueueDepth    int `json:"queue_depth"`
}

// waiter is one queued admission request. res carries the outcome: nil
// means admitted (the waiter owns its slots), non-nil means the
// scheduler failed the wait (drain). It is buffered so the scheduler
// never blocks signalling a waiter that is simultaneously giving up.
type waiter struct {
	cost      int
	res       chan error
	signalled bool // an outcome was sent on res; guarded by s.mu
	enqueued  time.Time
}

// Scheduler is a weighted-slot admission controller. Admission order is
// strict FIFO: the head waiter blocks later, smaller waiters even when
// they would fit (no starvation of expensive queries, at the price of
// some head-of-line blocking).
type Scheduler struct {
	opts Options

	mu         sync.Mutex
	active     int
	slotsInUse int
	queue      []*waiter
	draining   bool
	drainDone  chan struct{} // closed when draining && active == 0

	stats Stats
}

// New builds a Scheduler. MaxConcurrent < 1 is raised to 1.
func New(opts Options) *Scheduler {
	if opts.MaxConcurrent < 1 {
		opts.MaxConcurrent = 1
	}
	if opts.QueueDepth < 0 {
		opts.QueueDepth = 0
	}
	if opts.MaxSlots < 0 {
		opts.MaxSlots = 0
	}
	return &Scheduler{opts: opts}
}

// Options returns the configured limits.
func (s *Scheduler) Options() Options { return s.opts }

// clampCost normalizes a query's slot cost: at least 1, and never more
// than the slot budget (a DOP-64 query on an 8-slot scheduler runs alone
// at cost 8 rather than deadlocking forever).
func (s *Scheduler) clampCost(cost int) int {
	if cost < 1 {
		cost = 1
	}
	if s.opts.MaxSlots > 0 && cost > s.opts.MaxSlots {
		cost = s.opts.MaxSlots
	}
	return cost
}

// fits reports whether a query of the given cost can start now; callers
// hold s.mu.
func (s *Scheduler) fits(cost int) bool {
	if s.active >= s.opts.MaxConcurrent {
		return false
	}
	if s.opts.MaxSlots > 0 && s.slotsInUse+cost > s.opts.MaxSlots {
		return false
	}
	return true
}

// admitLocked marks a query running; callers hold s.mu.
func (s *Scheduler) admitLocked(cost int) {
	s.active++
	s.slotsInUse += cost
	s.stats.Admitted++
	if s.active > s.stats.MaxActive {
		s.stats.MaxActive = s.active
	}
	if s.slotsInUse > s.stats.MaxSlotsInUse {
		s.stats.MaxSlotsInUse = s.slotsInUse
	}
}

// Acquire admits a query of the given slot cost, blocking in the FIFO
// queue if the scheduler is saturated. On success it returns an
// idempotent release function that the caller must invoke exactly when
// the query finishes (Rows.Close does). On failure it returns one of
// ErrQueueFull, ErrQueueTimeout, ErrDraining, or ctx.Err().
func (s *Scheduler) Acquire(ctx context.Context, cost int) (func(), error) {
	cost = s.clampCost(cost)
	// A context that is already dead never enters the queue.
	if err := ctx.Err(); err != nil {
		s.mu.Lock()
		s.stats.Cancelled++
		s.mu.Unlock()
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.stats.Drained++
		s.mu.Unlock()
		return nil, ErrDraining
	}
	// Fast path: admit immediately. FIFO fairness: never jump an existing
	// queue even if this query would fit right now.
	if len(s.queue) == 0 && s.fits(cost) {
		s.admitLocked(cost)
		s.mu.Unlock()
		return s.releaseFunc(cost), nil
	}
	if len(s.queue) >= s.opts.QueueDepth {
		s.stats.Rejected++
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{cost: cost, res: make(chan error, 1), enqueued: time.Now()}
	s.queue = append(s.queue, w)
	s.stats.Queued++
	s.mu.Unlock()

	var timeout <-chan time.Time
	if s.opts.QueueTimeout > 0 {
		t := time.NewTimer(s.opts.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}

	select {
	case err := <-w.res:
		if err != nil {
			// Drain failed the wait; counters were booked at the drain site.
			return nil, err
		}
		s.recordWait(w, true)
		return s.releaseFunc(cost), nil
	case <-ctx.Done():
		return nil, s.giveUp(w, cost, &s.stats.Cancelled, ctx.Err())
	case <-timeout:
		return nil, s.giveUp(w, cost, &s.stats.TimedOut, ErrQueueTimeout)
	}
}

// giveUp handles a waiter abandoning the queue (cancel/timeout). If the
// scheduler signalled the waiter concurrently, the signalled outcome is
// honored for slot accounting — an admission's slots are returned — but
// the caller's failure is still reported (the query will not run).
func (s *Scheduler) giveUp(w *waiter, cost int, counter *uint64, failure error) error {
	s.mu.Lock()
	if !w.signalled {
		w.signalled = true
		for i, q := range s.queue {
			if q == w {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.stats.TotalWait += time.Since(w.enqueued)
		*counter++
		// Removing a waiter can unblock the new queue head (FIFO admits
		// stop at the first waiter that does not fit).
		s.admitNextLocked()
		s.mu.Unlock()
		return failure
	}
	s.mu.Unlock()
	// Lost the race: an outcome is already buffered on res. If it was an
	// admission, the caller's failure is still what happened from the
	// query's point of view, so the failure counter moves and the slots
	// go back — Admitted then overcounts by this (rare) wasted admission,
	// which the immediate release repays. If it was a drain failure, the
	// Drained counter already booked it and nothing else must (each
	// failed wait counts exactly once across the failure counters).
	if err := <-w.res; err == nil {
		s.mu.Lock()
		*counter++
		s.mu.Unlock()
		s.recordWait(w, false)
		s.releaseFunc(cost)()
	}
	return failure
}

// recordWait books a queue wait into the histogram (admitted waits only)
// and the running total. counted distinguishes the normal admission path
// from the gave-up-but-was-admitted race, where the wait still totals but
// the admission was wasted.
func (s *Scheduler) recordWait(w *waiter, counted bool) {
	d := time.Since(w.enqueued)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.TotalWait += d
	if !counted {
		return
	}
	for i, ub := range waitBuckets {
		if d < ub {
			s.stats.WaitHistogram[i]++
			return
		}
	}
	s.stats.WaitHistogram[len(waitBuckets)]++
}

// releaseFunc builds the idempotent ticket for one admitted query.
func (s *Scheduler) releaseFunc(cost int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.active--
			s.slotsInUse -= cost
			s.admitNextLocked()
			if s.draining && s.active == 0 && s.drainDone != nil {
				close(s.drainDone)
				s.drainDone = nil
			}
			s.mu.Unlock()
		})
	}
}

// admitNextLocked admits queued waiters in FIFO order while the head
// fits; callers hold s.mu.
func (s *Scheduler) admitNextLocked() {
	for len(s.queue) > 0 && !s.draining {
		w := s.queue[0]
		if !s.fits(w.cost) {
			break
		}
		s.queue = s.queue[1:]
		w.signalled = true
		s.admitLocked(w.cost)
		w.res <- nil
	}
}

// Drain stops admissions: every queued waiter fails with ErrDraining,
// new Acquire calls fail immediately, and Drain blocks until in-flight
// queries release (or ctx expires, returning ctx.Err() with queries
// still running). Drain is idempotent; concurrent calls all wait.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, w := range s.queue {
			w.signalled = true
			s.stats.Drained++
			s.stats.TotalWait += time.Since(w.enqueued)
			w.res <- ErrDraining
		}
		s.queue = nil
	}
	if s.active == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.drainDone == nil {
		s.drainDone = make(chan struct{})
	}
	done := s.drainDone
	s.mu.Unlock()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether the scheduler has begun shutting down.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats snapshots the counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Active = s.active
	st.Waiting = len(s.queue)
	st.SlotsInUse = s.slotsInUse
	st.Draining = s.draining
	st.MaxConcurrent = s.opts.MaxConcurrent
	st.MaxSlots = s.opts.MaxSlots
	st.QueueDepth = s.opts.QueueDepth
	return st
}
