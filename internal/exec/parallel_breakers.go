// Parallel pipeline breakers: the morsel-parallel counterparts of the
// materializing operators (aggregate, join, sort). Each one consumes its
// input through a MorselSource with its own pool of workers — the same
// claim-a-morsel loop Exchange uses — so the pipeline below a breaker
// keeps every core busy, and each guarantees output bit-identical to the
// serial plan:
//
//   - ParallelHashAggregate folds morsels into per-worker partial tables
//     and merges them; exact float summation (fsum.go) plus first-seen
//     (seq, row) group ordering make the result DOP-invariant.
//   - ParallelHashJoin materializes the build side in morsel order, then
//     builds key-hash-partitioned tables in parallel (no partition is
//     shared between build workers); the probe side runs as a pushable
//     HashProbeStage inside the left scan's exchange.
//   - RunSort stable-sorts each morsel into a run and streams a k-way
//     heap merge of the runs, breaking key ties by global row position —
//     exactly a stable sort of the whole input.
package exec

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"raven/internal/plan"
	"raven/internal/types"
)

// consumeMorsels runs dop workers that claim morsels from src, handing
// each non-empty batch to fold. fold runs concurrently on different
// workers but w identifies the calling worker, so per-worker state needs
// no locking. The first error (including ctx cancellation, checked
// between morsels) stops all workers; every worker has exited when
// consumeMorsels returns.
func consumeMorsels(src MorselSource, dop int, ctx context.Context, fold func(w, seq int, b *types.Batch) error) error {
	if dop < 1 {
		dop = 1
	}
	if err := src.Open(); err != nil {
		return err
	}
	defer src.Close()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		failed   atomic.Bool
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			failed.Store(true)
		}
		mu.Unlock()
	}
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !failed.Load() {
				if err := ctxErr(ctx); err != nil {
					fail(err)
					return
				}
				seq, b, err := src.NextMorsel()
				if err != nil {
					fail(err)
					return
				}
				if b == nil {
					return
				}
				if b.Len() == 0 {
					continue // fully filtered morsel; seq stays dense
				}
				if err := fold(w, seq, b); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// ---------------------------------------------------------------------------
// Two-phase aggregation

// partialGroup is one group's per-worker partial state plus the earliest
// (seq, row) position the group was seen at — the key to emitting groups
// in exactly the order a serial scan would first encounter them.
type partialGroup struct {
	g        *aggGroup
	firstSeq int
	firstRow int
}

func (p *partialGroup) before(o *partialGroup) bool {
	if p.firstSeq != o.firstSeq {
		return p.firstSeq < o.firstSeq
	}
	return p.firstRow < o.firstRow
}

// ParallelHashAggregate is the two-phase grouped aggregation: each worker
// folds its morsels into a private partial-aggregate table, then a merge
// stage combines the partials and emits groups in first-seen order,
// streamed as DefaultBatchSize chunks. Output is bit-identical to the
// serial HashAggregate for any DOP and morsel size (see aggGroup).
type ParallelHashAggregate struct {
	Source  MorselSource
	DOP     int
	GroupBy []string
	Aggs    []plan.AggSpec
	// Ctx cancels the fold and merge phases.
	Ctx context.Context

	schema *types.Schema
	keyIdx []int
	fam    aggFamilies
	out    []*types.Batch
	pos    int
}

// NewParallelHashAggregate builds the operator over an unopened morsel
// pipeline.
func NewParallelHashAggregate(src MorselSource, dop int, groupBy []string, aggs []plan.AggSpec, ctx context.Context) (*ParallelHashAggregate, error) {
	schema, err := aggOutputSchema(src.Schema(), groupBy, aggs)
	if err != nil {
		return nil, err
	}
	keyIdx := make([]int, len(groupBy))
	for i, g := range groupBy {
		keyIdx[i] = src.Schema().IndexOf(g)
	}
	return &ParallelHashAggregate{
		Source: src, DOP: dop, GroupBy: groupBy, Aggs: aggs, Ctx: ctx,
		schema: schema, keyIdx: keyIdx, fam: aggFamiliesOf(aggs, src.Schema()),
	}, nil
}

// Schema implements Operator.
func (h *ParallelHashAggregate) Schema() *types.Schema { return h.schema }

// Open implements Operator: run the parallel fold, then merge and emit.
func (h *ParallelHashAggregate) Open() error {
	h.out, h.pos = nil, 0
	dop := h.DOP
	if dop < 1 {
		dop = 1
	}
	partials := make([]map[string]*partialGroup, dop)
	for w := range partials {
		partials[w] = make(map[string]*partialGroup)
	}
	err := consumeMorsels(h.Source, dop, h.Ctx, func(w, seq int, b *types.Batch) error {
		argVals := make([]*types.Vector, len(h.Aggs))
		if err := evalAggArgs(argVals, h.Aggs, b); err != nil {
			return err
		}
		m := partials[w]
		var scratch []byte
		for i := 0; i < b.Len(); i++ {
			scratch = appendGroupKey(scratch, b, h.keyIdx, i)
			// Zero-alloc lookup; the key string materializes only on insert.
			pg, ok := m[string(scratch)]
			if !ok {
				key := string(scratch)
				pg = &partialGroup{g: newAggGroup(len(h.keyIdx), h.Aggs, h.fam), firstSeq: seq, firstRow: i}
				for k, ki := range h.keyIdx {
					pg.g.keys[k] = b.Vecs[ki].Value(i)
				}
				m[key] = pg
			} else if seq < pg.firstSeq || (seq == pg.firstSeq && i < pg.firstRow) {
				// Unreachable with today's monotonic morsel sources, but a
				// source handing out seqs out of claim order must also
				// re-capture the key values: rows whose keys render the
				// same (e.g. NaNs with different payloads) can differ in
				// bits, and the emitted group key must be the globally
				// first row's.
				pg.firstSeq, pg.firstRow = seq, i
				for k, ki := range h.keyIdx {
					pg.g.keys[k] = b.Vecs[ki].Value(i)
				}
			}
			pg.g.observe(h.Aggs, argVals, i)
		}
		putAggArgs(argVals, h.Aggs)
		return nil
	})
	if err != nil {
		return err
	}
	return h.mergeAndEmit(partials)
}

// mergeAndEmit combines per-worker partials and renders the output
// batches in deterministic first-seen order.
func (h *ParallelHashAggregate) mergeAndEmit(partials []map[string]*partialGroup) error {
	merged := make(map[string]*partialGroup)
	for _, m := range partials {
		if err := ctxErr(h.Ctx); err != nil {
			return err
		}
		for key, pg := range m {
			dst, ok := merged[key]
			if !ok {
				merged[key] = pg
				continue
			}
			if pg.before(dst) {
				// Keep the key values of the globally first-seen row so the
				// emitted group columns match the serial plan exactly.
				dst.firstSeq, dst.firstRow = pg.firstSeq, pg.firstRow
				dst.g.keys = pg.g.keys
			}
			dst.g.merge(pg.g, h.Aggs)
		}
	}
	groups := make([]*partialGroup, 0, len(merged))
	for _, pg := range merged {
		groups = append(groups, pg)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].before(groups[b]) })
	cur := types.NewBatch(h.schema)
	for gi, pg := range groups {
		if gi%4096 == 0 {
			if err := ctxErr(h.Ctx); err != nil {
				return err
			}
		}
		if err := cur.AppendRow(pg.g.emitRow(h.Aggs, h.schema, len(h.keyIdx))...); err != nil {
			return err
		}
		if cur.Len() >= types.DefaultBatchSize {
			h.out = append(h.out, cur)
			cur = types.NewBatch(h.schema)
		}
	}
	if cur.Len() > 0 {
		h.out = append(h.out, cur)
	}
	return nil
}

// Next implements Operator.
func (h *ParallelHashAggregate) Next() (*types.Batch, error) {
	if err := ctxErr(h.Ctx); err != nil {
		return nil, err
	}
	if h.pos >= len(h.out) {
		return nil, nil
	}
	b := h.out[h.pos]
	h.pos++
	return b, nil
}

// Close implements Operator.
func (h *ParallelHashAggregate) Close() error {
	h.out = nil
	return nil
}

// ---------------------------------------------------------------------------
// Parallel hash join

// joinBuild is the partitioned hash table over the materialized build
// side. Partitions are disjoint by key hash, so build workers own
// partitions exclusively and never synchronize; each partition's match
// lists hold global build-row ordinals in increasing order, which is what
// makes probe output identical to the serial single-table build.
type joinBuild struct {
	rightAll *types.Batch
	shift    uint // 64 - log2(len(parts))
	mask     int
	// intParts is the typed fast path used when the build key is INT;
	// anyParts handles every other key type (keyed like the serial join,
	// by the boxed value).
	intParts []map[int64][]int32
	anyParts []map[any][]int32
}

const fibMix = 0x9E3779B97F4A7C15

func (jb *joinBuild) intPart(k int64) int {
	return int((uint64(k)*fibMix)>>jb.shift) & jb.mask
}

// anyPartAt hashes row i of a non-INT key vector to its partition. NULL
// rows hash to partition 0 so build and probe agree regardless of the
// undefined raw value behind the null mask.
func (jb *joinBuild) anyPartAt(v *types.Vector, i int) int {
	if v.IsNull(i) {
		return 0
	}
	var h uint64
	switch v.Type {
	case types.Float:
		f := v.Floats[i]
		if f == 0 {
			f = 0 // +0.0 and -0.0 compare equal but differ in bits: same partition
		}
		h = math.Float64bits(f)
	case types.Bool:
		if v.Bools[i] {
			h = 1
		}
	case types.String:
		h = 14695981039346656037
		for _, c := range []byte(v.Strings[i]) {
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	return int((h*fibMix)>>jb.shift) & jb.mask
}

// buildJoinTables materializes the build input (in morsel order) and
// constructs the partitioned hash tables with dop workers.
func buildJoinTables(src MorselSource, dop int, ctx context.Context, keyIdx int) (*joinBuild, error) {
	if dop < 1 {
		dop = 1
	}
	// Phase 1: consume the build pipeline in parallel, keeping per-seq
	// batches so the materialized order matches a serial execution.
	var mu sync.Mutex
	type seqBatch struct {
		seq int
		b   *types.Batch
	}
	var got []seqBatch
	err := consumeMorsels(src, dop, ctx, func(w, seq int, b *types.Batch) error {
		mu.Lock()
		got = append(got, seqBatch{seq, b})
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(got, func(a, b int) bool { return got[a].seq < got[b].seq })
	all := types.NewBatch(src.Schema())
	total := 0
	for _, sb := range got {
		total += sb.b.Len()
	}
	all.Grow(total)
	for _, sb := range got {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		if err := all.Append(sb.b); err != nil {
			return nil, err
		}
	}

	n := all.Len()
	nParts := 1
	for nParts < 4*dop && nParts < 256 {
		nParts <<= 1
	}
	jb := &joinBuild{
		rightAll: all,
		shift:    uint(64 - bits.TrailingZeros(uint(nParts))),
		mask:     nParts - 1,
	}
	kv := all.Vecs[keyIdx]
	intKeys := kv.Type == types.Int

	// Phase 2: partition rows in parallel over row ranges, collecting
	// per-chunk per-partition row lists. Chunks are ordered row ranges,
	// so concatenating a partition's lists in chunk order preserves
	// global row order — and phase 3 never has to rescan the table.
	chunk := (n + dop - 1) / dop
	if chunk < 1 {
		chunk = 1
	}
	nChunks := (n + chunk - 1) / chunk
	byChunk := make([][][]int32, nChunks)
	var wg sync.WaitGroup
	for ci := 0; ci < nChunks; ci++ {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			lists := make([][]int32, nParts)
			if intKeys {
				for i := lo; i < hi; i++ {
					if i&0xFFFF == 0 && ctxErr(ctx) != nil {
						return
					}
					p := jb.intPart(kv.Ints[i])
					lists[p] = append(lists[p], int32(i))
				}
			} else {
				for i := lo; i < hi; i++ {
					if i&0xFFFF == 0 && ctxErr(ctx) != nil {
						return
					}
					p := jb.anyPartAt(kv, i)
					lists[p] = append(lists[p], int32(i))
				}
			}
			byChunk[ci] = lists
		}(ci, lo, hi)
	}
	wg.Wait()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	// Phase 3: build. Worker w owns partitions p with p%dop == w, so no
	// map is ever shared; it walks its partitions' row lists in chunk
	// order, keeping every match list in global row order.
	if intKeys {
		jb.intParts = make([]map[int64][]int32, nParts)
	} else {
		jb.anyParts = make([]map[any][]int32, nParts)
	}
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			inserted := 0
			for p := w; p < nParts; p += dop {
				if intKeys {
					m := make(map[int64][]int32)
					for ci := 0; ci < nChunks; ci++ {
						if byChunk[ci] == nil || ctxErr(ctx) != nil {
							return // a phase-2 worker bailed on cancellation
						}
						for _, i := range byChunk[ci][p] {
							if inserted&0xFFFF == 0 && ctxErr(ctx) != nil {
								return
							}
							inserted++
							k := kv.Ints[i]
							m[k] = append(m[k], i)
						}
					}
					jb.intParts[p] = m
				} else {
					m := make(map[any][]int32)
					for ci := 0; ci < nChunks; ci++ {
						if byChunk[ci] == nil || ctxErr(ctx) != nil {
							return
						}
						for _, i := range byChunk[ci][p] {
							if inserted&0xFFFF == 0 && ctxErr(ctx) != nil {
								return
							}
							inserted++
							k := kv.Value(int(i))
							m[k] = append(m[k], i)
						}
					}
					jb.anyParts[p] = m
				}
			}
		}(w)
	}
	wg.Wait()
	return jb, ctxErr(ctx)
}

// HashProbeStage probes the partitioned build tables — the morsel-
// parallel counterpart of HashJoin's probe loop. It is pushed onto the
// left input's exchange so probing runs inside the scan pipeline instead
// of as a serial operator above it; ParallelHashJoin binds the build
// tables before the exchange opens.
type HashProbeStage struct {
	LeftCol string
	right   *types.Schema
	rightCl string

	leftIdx  int
	rightSel []int
	out      *types.Schema
	bld      *joinBuild
}

// NewHashProbeStage builds the stage; the build-side schema is needed up
// front so OutSchema can drop the duplicate key column like plan.Join.
func NewHashProbeStage(leftCol string, rightSchema *types.Schema, rightCol string) *HashProbeStage {
	return &HashProbeStage{LeftCol: leftCol, right: rightSchema, rightCl: rightCol}
}

// OutSchema implements Stage.
func (p *HashProbeStage) OutSchema(in *types.Schema) (*types.Schema, error) {
	p.leftIdx = in.IndexOf(p.LeftCol)
	if p.leftIdx < 0 {
		return nil, fmt.Errorf("exec: join key %q not in left schema", p.LeftCol)
	}
	out, rightSel, _, err := joinOutputSchema(in, p.right, p.rightCl)
	if err != nil {
		return nil, err
	}
	p.out, p.rightSel = out, rightSel
	return p.out, nil
}

// Apply implements Stage. The build tables are immutable once bound, so
// concurrent probes from every exchange worker are safe.
func (p *HashProbeStage) Apply(b *types.Batch) (*types.Batch, error) {
	jb := p.bld
	if jb == nil {
		return nil, fmt.Errorf("exec: probe stage applied before the join build phase")
	}
	kv := b.Vecs[p.leftIdx]
	lp, rp := getSel(), getSel()
	leftSel, rightSel := (*lp)[:0], (*rp)[:0]
	release := func() {
		*lp, *rp = leftSel, rightSel
		putSel(lp)
		putSel(rp)
	}
	if jb.intParts != nil {
		if kv.Type != types.Int {
			release()
			return nil, nil // typed key mismatch: no matches, like the serial join
		}
		for i, k := range kv.Ints {
			for _, r := range jb.intParts[jb.intPart(k)][k] {
				leftSel = append(leftSel, i)
				rightSel = append(rightSel, int(r))
			}
		}
	} else {
		for i := 0; i < b.Len(); i++ {
			k := kv.Value(i)
			for _, r := range jb.anyParts[jb.anyPartAt(kv, i)][k] {
				leftSel = append(leftSel, i)
				rightSel = append(rightSel, int(r))
			}
		}
	}
	if len(leftSel) == 0 {
		release()
		return nil, nil
	}
	lpart := b.Gather(leftSel)
	rpart := jb.rightAll.Gather(rightSel).Project(p.rightSel)
	release()
	vecs := make([]*types.Vector, 0, len(lpart.Vecs)+len(rpart.Vecs))
	vecs = append(vecs, lpart.Vecs...)
	vecs = append(vecs, rpart.Vecs...)
	return &types.Batch{Schema: p.out, Vecs: vecs}, nil
}

// ParallelHashJoin runs the partitioned parallel build at Open and then
// delegates to the probe pipeline (the left exchange carrying the probe
// stage, or a serial StageOp fallback).
type ParallelHashJoin struct {
	Build    MorselSource
	BuildDOP int
	Probe    Operator
	// Ctx cancels the build phase and probe polling.
	Ctx context.Context

	stage  *HashProbeStage
	keyIdx int
}

// NewParallelHashJoin wires the operator together. stage must already be
// attached to probe (pushed onto its exchange or wrapped in a StageOp).
func NewParallelHashJoin(build MorselSource, buildDOP int, probe Operator, stage *HashProbeStage, rightCol string, ctx context.Context) (*ParallelHashJoin, error) {
	ri := build.Schema().IndexOf(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("exec: join key %q not in right schema", rightCol)
	}
	return &ParallelHashJoin{Build: build, BuildDOP: buildDOP, Probe: probe, Ctx: ctx, stage: stage, keyIdx: ri}, nil
}

// Schema implements Operator.
func (j *ParallelHashJoin) Schema() *types.Schema { return j.Probe.Schema() }

// Open implements Operator: build, bind, then open the probe pipeline.
func (j *ParallelHashJoin) Open() error {
	bld, err := buildJoinTables(j.Build, j.BuildDOP, j.Ctx, j.keyIdx)
	if err != nil {
		return err
	}
	j.stage.bld = bld
	return j.Probe.Open()
}

// Next implements Operator.
func (j *ParallelHashJoin) Next() (*types.Batch, error) {
	if err := ctxErr(j.Ctx); err != nil {
		return nil, err
	}
	return j.Probe.Next()
}

// Close implements Operator. The probe pipeline closes first — joining
// any workers still probing — before the build tables are released;
// nil-ing bld while an Apply is mid-morsel would be a data race.
func (j *ParallelHashJoin) Close() error {
	err := j.Probe.Close()
	j.stage.bld = nil
	return err
}

// StageOp applies one stage serially over an operator — the fallback used
// when a breaker's input is not a pushable exchange (serial plans, or
// unioned partition streams).
type StageOp struct {
	Child Operator
	St    Stage

	schema *types.Schema
}

// NewStageOp resolves the stage's output schema eagerly.
func NewStageOp(child Operator, st Stage) (*StageOp, error) {
	schema, err := st.OutSchema(child.Schema())
	if err != nil {
		return nil, err
	}
	return &StageOp{Child: child, St: st, schema: schema}, nil
}

// Schema implements Operator.
func (s *StageOp) Schema() *types.Schema { return s.schema }

// Open implements Operator.
func (s *StageOp) Open() error { return s.Child.Open() }

// Close implements Operator.
func (s *StageOp) Close() error { return s.Child.Close() }

// Next implements Operator.
func (s *StageOp) Next() (*types.Batch, error) {
	for {
		b, err := s.Child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		out, err := s.St.Apply(b)
		if err != nil {
			return nil, err
		}
		if out == nil || out.Len() == 0 {
			continue
		}
		return out, nil
	}
}

// ---------------------------------------------------------------------------
// Run merge-sort

// sortRun is one stable-sorted morsel: the run buffer (a private, pooled
// copy of the morsel), the sorting permutation (perm[k] is the original
// row index of the k-th smallest row), and a cursor for the merge.
type sortRun struct {
	seq  int
	b    *types.Batch
	keys []*types.Vector
	perm []int
	// permHandle returns perm's backing array to the selection pool once
	// the merge drains this run.
	permHandle *[]int
	pos        int
}

// RunSort replaces the materializing SortOp: each worker stable-sorts its
// morsels into runs, and Next streams a k-way heap merge of the runs in
// DefaultBatchSize batches instead of one giant batch. Key ties break by
// (seq, original row), so the output is exactly a stable sort of the
// input — bit-identical for any DOP and morsel size.
type RunSort struct {
	Source MorselSource
	DOP    int
	Keys   []SortKeySpec
	// Ctx cancels the run-sort and merge phases.
	Ctx context.Context

	schema *types.Schema
	keyIdx []int
	runs   []*sortRun
	heap   []*sortRun
	// pool recycles run buffers: each run is a private copy of its morsel
	// (the morsel itself may be a zero-copy view of table storage), so it
	// returns to the pool as soon as the merge drains it — across Next
	// calls of one query and across queries sharing the operator.
	pool *types.BatchPool
}

// NewRunSort builds the operator, resolving sort keys eagerly.
func NewRunSort(src MorselSource, dop int, keys []SortKeySpec, ctx context.Context) (*RunSort, error) {
	schema := src.Schema()
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		j := schema.IndexOf(k.Col)
		if j < 0 {
			return nil, fmt.Errorf("exec: sort key %q not found", k.Col)
		}
		keyIdx[i] = j
	}
	return &RunSort{Source: src, DOP: dop, Keys: keys, Ctx: ctx, schema: schema, keyIdx: keyIdx}, nil
}

// Schema implements Operator.
func (s *RunSort) Schema() *types.Schema { return s.schema }

// Open implements Operator: produce sorted runs in parallel and heapify.
func (s *RunSort) Open() error {
	s.runs, s.heap = nil, nil
	if s.pool == nil {
		s.pool = types.NewBatchPool(s.schema)
	}
	var mu sync.Mutex
	err := consumeMorsels(s.Source, s.DOP, s.Ctx, func(w, seq int, b *types.Batch) error {
		// Copy the morsel into a pooled run buffer. The morsel batch may
		// alias table storage or other live batches; the copy is private to
		// the sort, which is what lets it recycle once drained.
		rb := s.pool.Get()
		rb.Grow(b.Len())
		if err := rb.Append(b); err != nil {
			return err
		}
		r := &sortRun{seq: seq, b: rb}
		r.keys = make([]*types.Vector, len(s.keyIdx))
		for i, ki := range s.keyIdx {
			r.keys[i] = rb.Vecs[ki]
		}
		r.permHandle = getSel()
		perm := (*r.permHandle)[:0]
		for i := 0; i < b.Len(); i++ {
			perm = append(perm, i)
		}
		r.perm = perm
		sort.SliceStable(r.perm, func(a, c int) bool {
			for ki, k := range s.Keys {
				cmp := compareAt(r.keys[ki], r.perm[a], r.perm[c])
				if cmp == 0 {
					continue
				}
				if k.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		mu.Lock()
		s.runs = append(s.runs, r)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	sort.Slice(s.runs, func(a, b int) bool { return s.runs[a].seq < s.runs[b].seq })
	s.heap = append(s.heap, s.runs...)
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
	return nil
}

// runLess orders the merge heap: by sort keys, then by global position
// (seq, original row) so equal keys come out in input order.
func (s *RunSort) runLess(a, b *sortRun) bool {
	ia, ib := a.perm[a.pos], b.perm[b.pos]
	for ki, k := range s.Keys {
		cmp := compareVecs(a.keys[ki], ia, b.keys[ki], ib)
		if cmp == 0 {
			continue
		}
		if k.Desc {
			return cmp > 0
		}
		return cmp < 0
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return ia < ib
}

func (s *RunSort) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.runLess(s.heap[l], s.heap[m]) {
			m = l
		}
		if r < n && s.runLess(s.heap[r], s.heap[m]) {
			m = r
		}
		if m == i {
			return
		}
		s.heap[i], s.heap[m] = s.heap[m], s.heap[i]
		i = m
	}
}

// releaseRun returns a drained run's buffers to their pools. The output
// batches copy rows out of the run (AppendFrom), so nothing references
// the buffer once its cursor passes the end.
func (s *RunSort) releaseRun(r *sortRun) {
	if r.b != nil {
		s.pool.Put(r.b)
		r.b = nil
		r.keys = nil
	}
	if r.permHandle != nil {
		*r.permHandle = r.perm[:0]
		putSel(r.permHandle)
		r.permHandle = nil
		r.perm = nil
	}
}

// Next implements Operator: pop up to one batch worth of rows from the
// merge heap.
func (s *RunSort) Next() (*types.Batch, error) {
	if len(s.heap) == 0 {
		return nil, nil
	}
	if err := ctxErr(s.Ctx); err != nil {
		return nil, err
	}
	rem := 0
	for _, r := range s.heap {
		rem += len(r.perm) - r.pos
	}
	if rem > types.DefaultBatchSize {
		rem = types.DefaultBatchSize
	}
	out := types.NewBatch(s.schema)
	out.Grow(rem)
	for out.Len() < types.DefaultBatchSize && len(s.heap) > 0 {
		r := s.heap[0]
		row := r.perm[r.pos]
		for c := range out.Vecs {
			out.Vecs[c].AppendFrom(r.b.Vecs[c], row)
		}
		r.pos++
		if r.pos >= len(r.perm) {
			last := len(s.heap) - 1
			s.heap[0] = s.heap[last]
			s.heap = s.heap[:last]
			s.releaseRun(r)
		}
		if len(s.heap) > 0 {
			s.siftDown(0)
		}
	}
	return out, nil
}

// Close implements Operator: any runs the merge did not drain (LIMIT,
// cancellation) go back to the pool here.
func (s *RunSort) Close() error {
	for _, r := range s.runs {
		s.releaseRun(r)
	}
	s.runs, s.heap = nil, nil
	return nil
}
