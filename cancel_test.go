package raven

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/train"
)

// assertGoroutinesReturn waits for the goroutine count to fall back to the
// baseline, failing with a full stack dump if workers leaked. Exchange
// workers exit asynchronously after Close, so the check polls.
func assertGoroutinesReturn(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s", n, base, buf[:m])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// slowPredictDB builds an engine whose PREDICT is expensive enough that a
// millisecond deadline reliably lands mid-execution.
func slowPredictDB(t testing.TB, rows int) *DB {
	t.Helper()
	db := MustOpen()
	fl, err := data.GenFlightsWide(db.Catalog(), rows, 30, 10, 2000, 29)
	if err != nil {
		t.Fatal(err)
	}
	rf := train.FitForest(fl.TrainX, fl.TrainY, train.ForestOptions{
		NumTrees: 16,
		Seed:     7,
		Tree:     train.TreeOptions{MaxDepth: 8, MinLeaf: 10},
	})
	if err := db.StoreModel("slow_rf", &ml.Pipeline{Final: rf, InputColumns: fl.FeatureCols}); err != nil {
		t.Fatal(err)
	}
	return db
}

const slowPredictQuery = `SELECT p.prob FROM PREDICT(MODEL='slow_rf', DATA=flights_features AS d) WITH (prob FLOAT) AS p WHERE d.f0 > -100`

// TestContextCancelsParallelPredict is the acceptance scenario: a morsel-
// parallel (DOP >= 4) scan+PREDICT pipeline hit by a deadline must return
// ctx.Err() promptly and leave no goroutines behind, even under -race.
func TestContextCancelsParallelPredict(t *testing.T) {
	db := slowPredictDB(t, 50000)
	opts := QueryOptions{
		Mode:                  ModeInProcess,
		Parallelism:           4,
		ParallelThresholdRows: 1,
		MorselSize:            512,
	}
	// Uncancelled reference: the query takes much longer than the deadline
	// below, so the deadline is guaranteed to land mid-execution.
	start := time.Now()
	if _, err := db.QueryWithOptions(slowPredictQuery, opts); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if full < 10*time.Millisecond {
		t.Skipf("query too fast (%v) to cancel reliably on this host", full)
	}

	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		start = time.Now()
		rows, err := db.QueryContextWithOptions(ctx, slowPredictQuery, opts)
		if err == nil {
			_, err = rows.Collect()
		}
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("run %d: want DeadlineExceeded, got %v", i, err)
		}
		if elapsed > full/2+50*time.Millisecond {
			t.Errorf("run %d: cancellation not prompt: took %v of a %v query", i, elapsed, full)
		}
	}
	assertGoroutinesReturn(t, base)
}

func TestPreCancelledContext(t *testing.T) {
	db := slowPredictDB(t, 20000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := runtime.NumGoroutine()
	rows, err := db.QueryContextWithOptions(ctx, slowPredictQuery, QueryOptions{
		Mode: ModeInProcess, Parallelism: 4, ParallelThresholdRows: 1,
	})
	if err == nil {
		_, err = rows.Collect()
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	assertGoroutinesReturn(t, base)
}

func TestStmtQueryContextCancel(t *testing.T) {
	db := slowPredictDB(t, 50000)
	st, err := db.PrepareWithOptions(slowPredictQuery, QueryOptions{
		Mode: ModeInProcess, Parallelism: 4, ParallelThresholdRows: 1, MorselSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Uncancelled prepared run works and is the reference.
	rows, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	rows, err = st.QueryContext(ctx)
	if err == nil {
		_, err = rows.Collect()
	}
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		t.Fatalf("want ctx error, got %v", err)
	}
	assertGoroutinesReturn(t, base)
	// The statement is still healthy after a cancelled execution.
	rows, err = st.Query()
	if err != nil {
		t.Fatal(err)
	}
	again, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	batchesIdentical(t, "post-cancel reuse", ref.Batch, again.Batch)
}

// TestContextInterruptsExternalStartup covers the rt predictors: the
// simulated half-second external-runtime boot must not stall a cancelled
// query.
func TestContextInterruptsExternalStartup(t *testing.T) {
	db := slowPredictDB(t, 20000)
	db.Runtime().ExternalStartup = 2 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	rows, err := db.QueryContextWithOptions(ctx, slowPredictQuery, QueryOptions{
		Mode: ModeOutOfProcess, Parallelism: 1,
	})
	if err == nil {
		_, err = rows.Collect()
	}
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed > time.Second {
		t.Errorf("cancellation waited out the external startup: %v", elapsed)
	}
}

// TestContextCancelsParallelAggregate blocks a predictor below the
// two-phase parallel aggregate: the deadline must surface promptly from
// the fold workers (they poll ctx between morsels and the wrapped
// predictor polls per batch) with no goroutines left behind.
func TestContextCancelsParallelAggregate(t *testing.T) {
	db := slowPredictDB(t, 50000)
	q := `SELECT COUNT(*) AS n, AVG(p.prob) AS ap FROM PREDICT(MODEL='slow_rf', DATA=flights_features AS d) WITH (prob FLOAT) AS p WHERE d.f0 > -100`
	opts := QueryOptions{Mode: ModeInProcess, Parallelism: 4, ParallelThresholdRows: 1, MorselSize: 512}
	// Uncancelled reference run: the aggregate works and takes long
	// enough that a 2ms deadline lands mid-fold.
	start := time.Now()
	if _, err := db.QueryWithOptions(q, opts); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if full < 10*time.Millisecond {
		t.Skipf("query too fast (%v) to cancel reliably on this host", full)
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		start = time.Now()
		rows, err := db.QueryContextWithOptions(ctx, q, opts)
		if err == nil {
			_, err = rows.Collect()
		}
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("run %d: want DeadlineExceeded, got %v", i, err)
		}
		if elapsed > full/2+50*time.Millisecond {
			t.Errorf("run %d: cancellation not prompt: %v of a %v query", i, elapsed, full)
		}
	}
	assertGoroutinesReturn(t, base)
}

// TestContextCancelsBreakersOverJoin runs the full stacked shape — join
// build + probe exchange + post-breaker predict pipeline + parallel
// aggregate merge — under a deadline. Whichever phase the deadline lands
// in must abort promptly and leak nothing.
func TestContextCancelsBreakersOverJoin(t *testing.T) {
	db, h := hospitalDB(t, 40000)
	rf := train.FitForest(h.TrainX, h.TrainY, train.ForestOptions{
		NumTrees: 24,
		Seed:     11,
		Tree:     train.TreeOptions{MaxDepth: 8, MinLeaf: 10},
	})
	if err := db.StoreModel("slow_los", &ml.Pipeline{Final: rf, InputColumns: h.FeatureCols}); err != nil {
		t.Fatal(err)
	}
	q := `SELECT COUNT(*) AS n, AVG(p.los) AS al
		FROM PREDICT(MODEL='slow_los',
		  DATA=(SELECT * FROM patient_info AS pi
		        JOIN blood_tests AS bt ON pi.id = bt.id
		        JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
		WITH (los FLOAT) AS p`
	opts := QueryOptions{Mode: ModeInProcess, Parallelism: 4, ParallelThresholdRows: 1, MorselSize: 512}
	if _, err := db.QueryWithOptions(q, opts); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	// Deadlines spread from "inside the join build" to "inside the
	// aggregate fold" so different phases get hit across runs.
	for _, d := range []time.Duration{500 * time.Microsecond, 2 * time.Millisecond, 8 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		rows, err := db.QueryContextWithOptions(ctx, q, opts)
		if err == nil {
			_, err = rows.Collect()
		}
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("deadline %v: want DeadlineExceeded or success, got %v", d, err)
		}
	}
	// Pre-cancelled: no phase may even start.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := db.QueryContextWithOptions(ctx, q, opts)
	if err == nil {
		_, err = rows.Collect()
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: want Canceled, got %v", err)
	}
	assertGoroutinesReturn(t, base)
}

// TestContextCancelsPipelineBreakers drives cancellation through sort and
// aggregate (the join_agg.go materializing operators) rather than the
// exchange itself.
func TestContextCancelsPipelineBreakers(t *testing.T) {
	db := slowPredictDB(t, 50000)
	q := `SELECT d.f0, p.prob FROM PREDICT(MODEL='slow_rf', DATA=flights_features AS d) WITH (prob FLOAT) AS p WHERE d.f0 > -100 ORDER BY p.prob DESC LIMIT 10`
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	rows, err := db.QueryContextWithOptions(ctx, q, QueryOptions{
		Mode: ModeInProcess, Parallelism: 4, ParallelThresholdRows: 1, MorselSize: 512,
	})
	if err == nil {
		_, err = rows.Collect()
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	assertGoroutinesReturn(t, base)
}
