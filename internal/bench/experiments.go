package bench

import (
	"fmt"
	"math/rand"
	"time"

	"raven"
	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/nnconv"
	"raven/internal/ort"
	"raven/internal/pyanal"
	"raven/internal/rt"
	"raven/internal/tensor"
	"raven/internal/train"
	"raven/internal/xopt"
)

// Config scales the experiments. Quick shrinks sizes for unit-test and CI
// runs; Full approximates the paper's largest points that fit in memory.
type Config struct {
	Quick bool
	// Warm and Runs control timing (paper: averages over warm runs).
	Warm, Runs int
	// Parallelism and MorselSize configure the engines the experiments
	// build (0 keeps the engine defaults). Experiments that ablate DOP
	// explicitly (e.g. ParallelScaling's serial baseline) override per
	// query and are unaffected.
	Parallelism int
	MorselSize  int
	// Adaptive opens the engines with WithAdaptiveMorsels, so morsel,
	// serial-scan and inference batch sizes self-tune. The standard
	// configs enable it — it is the engine's recommended mode — and an
	// explicit MorselSize still wins inside the engine.
	Adaptive bool
}

// open builds an engine honoring the configured DOP and morsel size.
func (c Config) open() *raven.DB {
	opts := []raven.Option{raven.WithParallelism(c.Parallelism), raven.WithMorselSize(c.MorselSize)}
	if c.Adaptive {
		opts = append(opts, raven.WithAdaptiveMorsels())
	}
	return raven.MustOpen(opts...)
}

// DefaultConfig mirrors the paper's methodology at laptop scale.
func DefaultConfig() Config { return Config{Warm: 1, Runs: 3, Adaptive: true} }

// QuickConfig is used by unit-size benchmark invocations.
func QuickConfig() Config { return Config{Quick: true, Warm: 1, Runs: 1, Adaptive: true} }

func (c Config) sizes(full []int) []int {
	if !c.Quick {
		return full
	}
	// quick: first two sizes only
	if len(full) > 2 {
		return full[:2]
	}
	return full
}

// hospitalForestPipeline trains the RF pipeline used by Fig 2(d)/Fig 3.
func hospitalForestPipeline(h *data.Hospital, trees, depth int) *ml.Pipeline {
	sc := ml.FitScaler(h.TrainX)
	scaled, _ := sc.Transform(h.TrainX)
	rf := train.FitForest(scaled, h.TrainY, train.ForestOptions{
		NumTrees: trees,
		Seed:     9,
		Tree:     train.TreeOptions{MaxDepth: depth, MinLeaf: 10},
	})
	return &ml.Pipeline{Steps: []ml.Transformer{sc}, Final: rf, InputColumns: h.FeatureCols}
}

// predictQuery builds the standard hospital inference query.
const hospitalPredictQuery = `SELECT p.score FROM PREDICT(MODEL='%s',
  DATA=(SELECT * FROM patient_info AS pi
        JOIN blood_tests AS bt ON pi.id = bt.id
        JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
  WITH (score FLOAT) AS p`

// Fig2a reproduces model-projection pushdown on L1-sparse logistic
// regression (paper: ~1.7× at 41.75% sparsity, ~5.3× at 80.96%).
func Fig2a(cfg Config) (*Table, error) {
	t := &Table{
		ID:         "Fig2a",
		Title:      "model-projection pushdown (flight delay, L1 logistic regression)",
		PaperShape: "~1.7x speedup at 41.75% sparsity, ~5.3x at 80.96%; gain driven by #features dropped",
	}
	rows := 1000000
	d := 200
	if cfg.Quick {
		rows, d = 50000, 100
	}
	db := cfg.open()
	fl, err := data.GenFlightsWide(db.Catalog(), rows, d, d/3, 4000, 21)
	if err != nil {
		return nil, err
	}
	for _, m := range []struct {
		name string
		l1   float64
	}{
		{"lr_low_sparsity", 0.002},
		{"lr_high_sparsity", 0.012},
	} {
		lr := train.FitLogReg(fl.TrainX, fl.TrainY, train.LogRegOptions{L1: m.l1, Epochs: 60, Seed: 2})
		pipe := &ml.Pipeline{Final: lr, InputColumns: fl.FeatureCols}
		if err := db.StoreModel(m.name, pipe); err != nil {
			return nil, err
		}
		q := fmt.Sprintf(`SELECT p.prob FROM PREDICT(MODEL='%s', DATA=flights_features AS d) WITH (prob FLOAT) AS p`, m.name)
		label := fmt.Sprintf("%s (%.1f%% sparse)", m.name, lr.Sparsity()*100)

		base, err := Time(cfg.Warm, cfg.Runs, func() error {
			_, err := db.QueryWithOptions(q, raven.QueryOptions{CrossOptimize: false, Mode: raven.ModeInProcess, Parallelism: 1})
			return err
		})
		if err != nil {
			return nil, err
		}
		opt, err := Time(cfg.Warm, cfg.Runs, func() error {
			_, err := db.QueryWithOptions(q, raven.QueryOptions{
				CrossOptimize: true, DisableNNTranslation: true, DisableInlining: true,
				Mode: raven.ModeInProcess, Parallelism: 1,
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add("baseline", label, base, "")
		t.Add("projection pushdown", label, opt, fmt.Sprintf("speedup %.2fx", float64(base)/float64(opt)))
	}
	return t, nil
}

// Fig2b reproduces model clustering (paper: up to 54% less inference time
// on flight delay, gain grows then saturates with cluster count; hospital
// does not benefit because its categorical features are already binary).
// The pipeline is one-hot encode + logistic regression; per-cluster
// specialization folds cluster-constant categorical columns into the bias
// so they are neither encoded nor multiplied.
func Fig2b(cfg Config) (*Table, error) {
	t := &Table{
		ID:         "Fig2b",
		Title:      "model clustering (flight delay one-hot+LR pipeline; hospital control)",
		PaperShape: "up to 54% reduction; more clusters -> bigger gain with diminishing returns; hospital: no benefit",
	}
	rows := 700000
	if cfg.Quick {
		rows = 60000
	}
	const (
		numerics = 3
		catCount = 5
		groups   = 32
	)
	d := numerics + catCount
	rng := rand.New(rand.NewSource(77))
	raw := make([]float64, rows*d)
	for i := 0; i < rows; i++ {
		g := rng.Intn(groups)
		row := raw[i*d : (i+1)*d]
		for j := 0; j < numerics; j++ {
			row[j] = rng.NormFloat64()
		}
		// hierarchical categorical encodings: cat j = g >> j, so coarser
		// clusterings pin the coarse columns and finer clusterings pin
		// progressively more (the paper's growing-then-saturating curve)
		for j := 0; j < catCount; j++ {
			row[numerics+j] = float64(g >> j)
		}
	}
	rawM := ml.Matrix{Data: raw, Rows: rows, Cols: d}
	catCols := make([]int, catCount)
	for j := range catCols {
		catCols[j] = numerics + j
	}
	sampleN := 20000
	if sampleN > rows {
		sampleN = rows
	}
	sample := ml.Matrix{Data: raw[:sampleN*d], Rows: sampleN, Cols: d}
	enc := ml.FitOneHot(sample, catCols)
	encSample, err := enc.Transform(sample)
	if err != nil {
		return nil, err
	}
	ys := make([]float64, sampleN)
	for i := range ys {
		if sample.At(i, 0) > 0 {
			ys[i] = 1
		}
	}
	lr := train.FitLogReg(encSample, ys, train.LogRegOptions{Epochs: 10, Seed: 3})

	// baseline: encode + predict, chunked the way a pipeline executes
	const chunk = 8192
	base, err := Time(cfg.Warm, cfg.Runs, func() error {
		for lo := 0; lo < rows; lo += chunk {
			hi := lo + chunk
			if hi > rows {
				hi = rows
			}
			part := ml.Matrix{Data: raw[lo*d : hi*d], Rows: hi - lo, Cols: d}
			encPart, err := enc.Transform(part)
			if err != nil {
				return err
			}
			if _, err := lr.Predict(encPart); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Add("original pipeline", "k=1", base, "")
	for _, k := range cfg.sizes([]int{2, 4, 8, 16, 32}) {
		compileStart := time.Now()
		cm, err := xopt.BuildClusteredEncodedModel(enc, lr, sample, k, 1e-9, 5)
		if err != nil {
			return nil, err
		}
		compile := time.Since(compileStart)
		dur, err := Time(cfg.Warm, cfg.Runs, func() error {
			_, err := cm.Predict(rawM)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add("clustered", fmt.Sprintf("k=%d", k), dur,
			fmt.Sprintf("k=%d: avg active terms %.1f (of %d raw cols), offline clustering %v",
				k, cm.AvgActiveTerms(), d, compile.Round(time.Millisecond)))
	}
	// hospital control: categorical features are already binary, so the
	// encoder drops (almost) nothing and clustering does not pay.
	hcat := cfg.open().Catalog()
	h, err := data.GenHospital(hcat, 1000, min(rows, 200000), 7)
	if err != nil {
		return nil, err
	}
	hlr := train.FitLogReg(h.TrainX, h.TrainY, train.LogRegOptions{Epochs: 10, Seed: 3})
	hbase, err := Time(cfg.Warm, cfg.Runs, func() error { _, err := hlr.Predict(h.TrainX); return err })
	if err != nil {
		return nil, err
	}
	hcm, err := raven.BuildClusteredModel(hlr, h.TrainX, 8, 1e-9, 5)
	if err != nil {
		return nil, err
	}
	hdur, err := Time(cfg.Warm, cfg.Runs, func() error { _, err := hcm.Predict(h.TrainX); return err })
	if err != nil {
		return nil, err
	}
	t.Add("original pipeline", "hospital k=1", hbase, "")
	t.Add("clustered", "hospital k=8", hdur,
		fmt.Sprintf("hospital: avg kept %.1f/%d features (binary features, few dropped -> no benefit)", hcm.AvgKeptFeatures(), h.TrainX.Cols))
	return t, nil
}

// Fig2c reproduces model inlining (paper: ~17× at 300K rows for tree→SQL
// CASE vs scikit-learn reading from the DB; predicate pruning adds ~29%
// for 24.5× total).
func Fig2c(cfg Config) (*Table, error) {
	t := &Table{
		ID:         "Fig2c",
		Title:      "model inlining (hospital stay, decision tree as SQL CASE)",
		PaperShape: "~17x at 300K rows vs sklearn-from-DB; +29% with predicate pruning => 24.5x total",
	}
	sizes := cfg.sizes([]int{1000, 10000, 100000, 300000})
	maxRows := sizes[len(sizes)-1]
	db := cfg.open()
	h, err := data.GenHospital(db.Catalog(), maxRows, 4000, 42)
	if err != nil {
		return nil, err
	}
	tree := train.FitTree(h.TrainX, h.TrainY, train.TreeOptions{MaxDepth: 6, MinLeaf: 10})
	pipe := &ml.Pipeline{Final: tree, InputColumns: h.FeatureCols}
	if err := db.StoreModel("los_tree", pipe); err != nil {
		return nil, err
	}
	db.Runtime().ExternalStartup = rt.DefaultExternalStartup
	for _, n := range sizes {
		lim := FmtRows(n)
		q := fmt.Sprintf(`SELECT p.score FROM PREDICT(MODEL='los_tree',
			DATA=(SELECT * FROM patient_info AS pi
			      JOIN blood_tests AS bt ON pi.id = bt.id
			      JOIN prenatal_tests AS pt ON bt.id = pt.id
			      WHERE pi.id < %d) AS d)
			WITH (score FLOAT) AS p WHERE d.pregnant = 1`, n)
		// Baseline: the classical framework outside the DB — external
		// runtime startup + data transfer + per-row tree traversal.
		base, err := Time(cfg.Warm, cfg.Runs, func() error {
			_, err := db.QueryWithOptions(q, raven.QueryOptions{CrossOptimize: false, Mode: raven.ModeOutOfProcess, Parallelism: 1})
			return err
		})
		if err != nil {
			return nil, err
		}
		inlined, err := Time(cfg.Warm, cfg.Runs, func() error {
			_, err := db.QueryWithOptions(q, raven.QueryOptions{
				CrossOptimize: true, DisablePruning: true, DisableNNTranslation: true,
				Mode: raven.ModeInProcess, Parallelism: 1,
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		pruned, err := Time(cfg.Warm, cfg.Runs, func() error {
			_, err := db.QueryWithOptions(q, raven.QueryOptions{
				CrossOptimize: true, DisableNNTranslation: true,
				Mode: raven.ModeInProcess, Parallelism: 1,
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add("sklearn-sim from DB", lim, base, "")
		t.Add("inlined CASE", lim, inlined, "")
		t.Add("inlined + pruning", lim, pruned, "")
	}
	return t, nil
}

// Fig2d reproduces NN translation (paper: RF-NN CPU ≈2× sklearn at 1K,
// GPU +10% over CPU at 1K, GPU up to 15× sklearn at 1M; CPU gap closes at
// scale).
func Fig2d(cfg Config) (*Table, error) {
	t := &Table{
		ID:         "Fig2d",
		Title:      "NN translation (hospital stay, random forest; GPU series simulated)",
		PaperShape: "RF-NN CPU ~2x sklearn at 1K; GPU wins more with scale (up to 15x at 1M); CPU gap closes at scale",
	}
	sizes := cfg.sizes([]int{1000, 10000, 100000, 1000000})
	cat := cfg.open().Catalog()
	h, err := data.GenHospital(cat, 1000, 4000, 42)
	if err != nil {
		return nil, err
	}
	pipe := hospitalForestPipeline(h, 10, 6)
	g, err := nnconv.TranslatePipeline(pipe)
	if err != nil {
		return nil, err
	}
	cpuSess, err := ort.NewSessionWithOptions(g, ort.SessionOptions{Optimize: true, Provider: ort.CPUProvider{}})
	if err != nil {
		return nil, err
	}
	gpuSess, err := ort.NewSessionWithOptions(g, ort.SessionOptions{Optimize: true, Provider: ort.DefaultGPU()})
	if err != nil {
		return nil, err
	}
	maxRows := sizes[len(sizes)-1]
	xAll := replicateMatrix(h.TrainX, maxRows)
	for _, n := range sizes {
		lim := FmtRows(n)
		x := ml.Matrix{Data: xAll.Data[:n*xAll.Cols], Rows: n, Cols: xAll.Cols}
		skl, err := Time(cfg.Warm, cfg.Runs, func() error {
			_, err := pipe.Predict(x)
			return err
		})
		if err != nil {
			return nil, err
		}
		xt, err := tensor.FromSlice(x.Data, n, x.Cols)
		if err != nil {
			return nil, err
		}
		cpu, err := Time(cfg.Warm, cfg.Runs, func() error {
			_, _, err := cpuSess.Run(map[string]*tensor.Tensor{"X": xt})
			return err
		})
		if err != nil {
			return nil, err
		}
		// GPU: results computed on host; report the device-model charged
		// time (simulated accelerator — see DESIGN.md).
		var charged time.Duration
		_, st, err := gpuSess.Run(map[string]*tensor.Tensor{"X": xt})
		if err != nil {
			return nil, err
		}
		charged = st.Charged
		t.Add("RF (sklearn-sim)", lim, skl, "")
		t.Add("RF-NN (CPU)", lim, cpu, "")
		t.AddMillis("RF-NN (GPU, simulated)", lim, float64(charged.Microseconds())/1000, "GPU series uses the calibrated device cost model")
	}
	return t, nil
}

// replicateMatrix tiles src rows until n rows.
func replicateMatrix(src ml.Matrix, n int) ml.Matrix {
	out := make([]float64, n*src.Cols)
	for i := 0; i < n; i++ {
		copy(out[i*src.Cols:(i+1)*src.Cols], src.Row(i%src.Rows))
	}
	return ml.Matrix{Data: out, Rows: n, Cols: src.Cols}
}

// Fig3 reproduces the inference-mode comparison: standalone ORT vs Raven
// (in-process, session cache, parallel scan+PREDICT) vs Raven Ext
// (out-of-process, ~0.5s startup), for RF and MLP pipelines.
func Fig3(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "Fig3",
		Title: "inference modes (ORT standalone vs Raven in-process vs Raven Ext)",
		PaperShape: "Raven faster on small data (session cache: 3ms vs 20ms at 100 rows); <=15% overhead mid-range; " +
			"~5x faster at 1M+ via parallel scan+PREDICT; Raven Ext +~0.5s constant",
	}
	sizes := cfg.sizes([]int{100, 10000, 100000, 1000000})
	maxRows := sizes[len(sizes)-1]
	db := cfg.open()
	h, err := data.GenHospital(db.Catalog(), maxRows, 4000, 42)
	if err != nil {
		return nil, err
	}
	models := []struct {
		name string
		pipe *ml.Pipeline
	}{
		{"rf", hospitalForestPipeline(h, 10, 6)},
	}
	if !cfg.Quick {
		sc := ml.FitScaler(h.TrainX)
		scaled, _ := sc.Transform(h.TrainX)
		mlp := train.FitMLP(scaled, h.TrainY, train.MLPOptions{Hidden: []int{32, 16}, Epochs: 3, Seed: 4, Classifier: true})
		models = append(models, struct {
			name string
			pipe *ml.Pipeline
		}{"mlp", &ml.Pipeline{Steps: []ml.Transformer{sc}, Final: mlp, InputColumns: h.FeatureCols}})
	}
	for _, m := range models {
		if err := db.StoreModel(m.name, m.pipe); err != nil {
			return nil, err
		}
		g, err := nnconv.TranslatePipeline(m.pipe)
		if err != nil {
			return nil, err
		}
		for _, n := range sizes {
			lim := FmtRows(n) + " " + m.name
			q := fmt.Sprintf(`SELECT p.score FROM PREDICT(MODEL='%s',
				DATA=(SELECT * FROM patient_info AS pi
				      JOIN blood_tests AS bt ON pi.id = bt.id
				      JOIN prenatal_tests AS pt ON bt.id = pt.id
				      WHERE pi.id < %d) AS d)
				WITH (score FLOAT) AS p`, m.name, n)

			// Standalone ORT: reload (re-build) the session every query,
			// single inference call, no DB parallelism.
			ortTime, err := Time(cfg.Warm, cfg.Runs, func() error {
				sess, err := ort.NewSessionWithOptions(g.Clone(), ort.SessionOptions{Optimize: true, Provider: ort.CPUProvider{Parallelism: 1}})
				if err != nil {
					return err
				}
				x, err := extractMatrix(db, n, h.FeatureCols)
				if err != nil {
					return err
				}
				_, _, err = sess.Run(map[string]*tensor.Tensor{"X": x})
				return err
			})
			if err != nil {
				return nil, err
			}
			raven8, err := Time(cfg.Warm, cfg.Runs, func() error {
				_, err := db.QueryWithOptions(q, raven.QueryOptions{
					CrossOptimize: false, Mode: raven.ModeInProcessNN, Parallelism: 8,
				})
				return err
			})
			if err != nil {
				return nil, err
			}
			ravenSeq, err := Time(cfg.Warm, cfg.Runs, func() error {
				_, err := db.QueryWithOptions(q, raven.QueryOptions{
					CrossOptimize: false, Mode: raven.ModeInProcessNN, Parallelism: 1,
				})
				return err
			})
			if err != nil {
				return nil, err
			}
			ext, err := Time(cfg.Warm, min(cfg.Runs, 1), func() error {
				db.Runtime().ExternalStartup = rt.DefaultExternalStartup
				_, err := db.QueryWithOptions(q, raven.QueryOptions{
					CrossOptimize: false, Mode: raven.ModeOutOfProcess, Parallelism: 1,
					DisableSessionCache: true,
				})
				return err
			})
			if err != nil {
				return nil, err
			}
			t.Add("ORT", lim, ortTime, "")
			t.Add("Raven", lim, raven8, "")
			t.Add("Raven (forced sequential)", lim, ravenSeq, "")
			t.Add("Raven Ext", lim, ext, "")
		}
	}
	return t, nil
}

// extractMatrix reads the joined hospital features for the first n ids —
// the "read the data" step of standalone scoring.
func extractMatrix(db *raven.DB, n int, cols []string) (*tensor.Tensor, error) {
	q := fmt.Sprintf(`SELECT * FROM patient_info AS pi
		JOIN blood_tests AS bt ON pi.id = bt.id
		JOIN prenatal_tests AS pt ON bt.id = pt.id
		WHERE pi.id < %d`, n)
	b, err := db.QuerySQLOnly(q)
	if err != nil {
		return nil, err
	}
	flat, rows, err := b.FloatMatrix(cols)
	if err != nil {
		return nil, err
	}
	return tensor.FromSlice(flat, rows, len(cols))
}

// PredicatePruning reproduces §4.1's inline numbers: ~29% faster tree
// prediction under pregnant=1, and ~2.1× logistic regression with a
// destination-airport equality pinning its one-hot block (selectivity-
// independent: the gain comes from the dropped features).
func PredicatePruning(cfg Config) (*Table, error) {
	t := &Table{
		ID:         "PredPruning",
		Title:      "predicate-based model pruning (model-only scoring time)",
		PaperShape: "tree: ~29% faster under pregnant=1; LR+one-hot: ~2.1x with destination filter, selectivity-independent",
	}
	// Tree: deep tree over hospital-like features where pregnant splits
	// appear throughout.
	cat := cfg.open().Catalog()
	h, err := data.GenHospital(cat, 1000, 8000, 17)
	if err != nil {
		return nil, err
	}
	n := 200000
	if cfg.Quick {
		n = 20000
	}
	x := replicateMatrix(h.TrainX, n)
	// force rows to pregnant=1 so both models traverse valid paths
	for i := 0; i < n; i++ {
		x.Data[i*x.Cols] = 1
		x.Data[i*x.Cols+2] = 1
	}
	// A tree shaped like the paper's: pregnant at the root, a deep
	// not-pregnant subtree, a shallower pregnant subtree. Pruning on
	// pregnant=1 removes the root test and the deep branch, cutting the
	// average path length for the scored rows.
	tree := prunableTree(10, 4)
	pruned := tree.Prune(ml.Constraints{0: ml.Point(1), 2: ml.Point(1)})
	base, err := Time(cfg.Warm, cfg.Runs, func() error { _, err := tree.Predict(x); return err })
	if err != nil {
		return nil, err
	}
	fast, err := Time(cfg.Warm, cfg.Runs, func() error { _, err := pruned.Predict(x); return err })
	if err != nil {
		return nil, err
	}
	t.Add("original", "tree (pregnant=1)", base,
		fmt.Sprintf("tree nodes %d -> %d", tree.NumNodes(), pruned.NumNodes()))
	t.Add("pruned", "tree (pregnant=1)", fast,
		fmt.Sprintf("tree time reduced %.0f%%", 100*(1-float64(fast)/float64(base))))

	// LR over one-hot destination (100 airports): equality pins 100
	// indicators, PinFeatures folds them into the bias.
	nDest := 100
	enc := &ml.OneHotEncoder{Cols: []int{1}, Categories: [][]float64{seqFloats(nDest)}, InputDim: 2}
	w := make([]float64, 1+nDest)
	for i := range w {
		w[i] = 0.01 * float64(i%7)
	}
	lr := &ml.LogisticRegression{W: w, B: 0}
	raw := make([]float64, n*2)
	for i := 0; i < n; i++ {
		raw[i*2] = float64(i % 3000)
		raw[i*2+1] = 42 // matches the filter dest=42 (selectivity-independent per paper)
	}
	rawM := ml.Matrix{Data: raw, Rows: n, Cols: 2}
	full, err := enc.Transform(rawM)
	if err != nil {
		return nil, err
	}
	lrBase, err := Time(cfg.Warm, cfg.Runs, func() error { _, err := lr.Predict(full); return err })
	if err != nil {
		return nil, err
	}
	pins := map[int]float64{}
	idx42, err := enc.OutputIndexOfCategory(2, 1, 42)
	if err != nil {
		return nil, err
	}
	lo, hi, _ := enc.IndicatorRange(2, 1)
	for j := lo; j < hi; j++ {
		if j == idx42 {
			pins[j] = 1
		} else {
			pins[j] = 0
		}
	}
	pinned, kept := lr.PinFeatures(pins)
	sel := &ml.ColumnSelect{Indices: kept}
	lrFast, err := Time(cfg.Warm, cfg.Runs, func() error {
		nx, err := sel.Transform(full)
		if err != nil {
			return err
		}
		_, err = pinned.Predict(nx)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Add("original", "LR one-hot (dest=42)", lrBase, "")
	t.Add("pruned", "LR one-hot (dest=42)", lrFast,
		fmt.Sprintf("LR features %d -> %d, speedup %.2fx", len(w), len(pinned.W), float64(lrBase)/float64(lrFast)))
	return t, nil
}

// prunableTree builds pregnant(0) at the root with a depth-`deep`
// subtree on the left (pregnant=0) and a depth-`shallow` bp/age subtree on
// the right.
func prunableTree(deep, shallow int) *ml.DecisionTree {
	t := &ml.DecisionTree{NFeat: 9}
	add := func(f int, thr, v float64) int {
		t.Feature = append(t.Feature, f)
		t.Threshold = append(t.Threshold, thr)
		t.Left = append(t.Left, -1)
		t.Right = append(t.Right, -1)
		t.Value = append(t.Value, v)
		return len(t.Feature) - 1
	}
	var build func(depth, feat int) int
	build = func(depth, feat int) int {
		if depth == 0 {
			return add(-1, 0, float64(feat%3))
		}
		f := 1 + (feat % 8)
		self := add(f, float64(30+feat*7%90), 0)
		l := build(depth-1, feat*2+1)
		r := build(depth-1, feat*2+2)
		t.Left[self], t.Right[self] = l, r
		return self
	}
	root := add(0, 0.5, 0)
	l := build(deep, 1)
	r := build(shallow, 2)
	t.Left[root], t.Right[root] = l, r
	// node 0 is already the root by construction
	return t
}

func seqFloats(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// BatchVsTuple reproduces §5 observation (v): batch inference beats
// per-tuple inference by about an order of magnitude.
func BatchVsTuple(cfg Config) (*Table, error) {
	t := &Table{
		ID:         "BatchVsTuple",
		Title:      "batch inference vs one prediction per tuple",
		PaperShape: "batching gains about an order of magnitude",
	}
	cat := cfg.open().Catalog()
	h, err := data.GenHospital(cat, 1000, 4000, 42)
	if err != nil {
		return nil, err
	}
	pipe := hospitalForestPipeline(h, 5, 5)
	g, err := nnconv.TranslatePipeline(pipe)
	if err != nil {
		return nil, err
	}
	sess, err := ort.NewSession(g)
	if err != nil {
		return nil, err
	}
	n := 20000
	if cfg.Quick {
		n = 2000
	}
	x := replicateMatrix(h.TrainX, n)
	for _, batch := range []int{1, 64, 1024, 4096} {
		dur, err := Time(cfg.Warm, 1, func() error {
			for lo := 0; lo < n; lo += batch {
				hi := lo + batch
				if hi > n {
					hi = n
				}
				xt, err := tensor.FromSlice(x.Data[lo*x.Cols:hi*x.Cols], hi-lo, x.Cols)
				if err != nil {
					return err
				}
				if _, _, err := sess.Run(map[string]*tensor.Tensor{"X": xt}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Add("RF-NN", fmt.Sprintf("batch=%d", batch), dur, "")
	}
	return t, nil
}

// StaticAnalysis reproduces §3.2's claim that analysis takes <10ms.
func StaticAnalysis(cfg Config) (*Table, error) {
	t := &Table{
		ID:         "StaticAnalysis",
		Title:      "static analysis latency (running-example pipeline script)",
		PaperShape: "less than 10 msec in most practical cases",
	}
	script := `
import pandas as pd
from sklearn.pipeline import Pipeline
from sklearn.preprocessing import StandardScaler
from sklearn.tree import DecisionTreeClassifier

data = pd.read_sql("SELECT * FROM patients", conn)
features = data[["pregnant", "age", "gender", "bp"]]
model_pipeline = Pipeline([
    ("union", FeatureUnion([("scaler", StandardScaler())])),
    ("clf", DecisionTreeClassifier(max_depth=6)),
])
`
	dur, err := Time(5, 100, func() error {
		_, err := pyanal.Analyze(script)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Add("analyze", "running example", dur, "")
	return t, nil
}

// RunningExample times the full Fig 1 query with and without the cross
// optimizer (paper §2: up to 24x end-to-end from cross-optimizations).
func RunningExample(cfg Config) (*Table, error) {
	t := &Table{
		ID:         "RunningExample",
		Title:      "Fig 1 inference query end-to-end (all optimizations vs none)",
		PaperShape: "cross-optimizations yield up to 24x (vs framework outside the DB)",
	}
	rows := 300000
	if cfg.Quick {
		rows = 30000
	}
	db := cfg.open()
	h, err := data.GenHospital(db.Catalog(), rows, 4000, 42)
	if err != nil {
		return nil, err
	}
	tree := train.FitTree(h.TrainX, h.TrainY, train.TreeOptions{MaxDepth: 6, MinLeaf: 10})
	pipe := &ml.Pipeline{Final: tree, InputColumns: h.FeatureCols}
	if err := db.StoreModel("duration_of_stay", pipe); err != nil {
		return nil, err
	}
	q := `DECLARE @model = 'duration_of_stay';
WITH data AS (
  SELECT * FROM patient_info AS pi
  JOIN blood_tests AS bt ON pi.id = bt.id
  JOIN prenatal_tests AS pt ON bt.id = pt.id
)
SELECT d.id, p.length_of_stay
FROM PREDICT(MODEL = @model, DATA = data AS d)
WITH (length_of_stay FLOAT) AS p
WHERE d.pregnant = 1 AND p.length_of_stay > 0.5`
	base, err := Time(cfg.Warm, cfg.Runs, func() error {
		_, err := db.QueryWithOptions(q, raven.QueryOptions{CrossOptimize: false, Mode: raven.ModeOutOfProcess, Parallelism: 1})
		return err
	})
	if err != nil {
		return nil, err
	}
	res, err := db.Query(q)
	if err != nil {
		return nil, err
	}
	opt, err := Time(cfg.Warm, cfg.Runs, func() error {
		_, err := db.Query(q)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Add("no optimization (external)", "Fig1 query", base, "")
	t.Add("Raven optimized", "Fig1 query", opt,
		fmt.Sprintf("rules: %v; speedup %.1fx", res.AppliedRules, float64(base)/float64(opt)))
	return t, nil
}

// All runs every experiment in paper order.
func All(cfg Config) ([]*Table, error) {
	type exp struct {
		name string
		fn   func(Config) (*Table, error)
	}
	exps := []exp{
		{"Fig2a", Fig2a}, {"Fig2b", Fig2b}, {"Fig2c", Fig2c}, {"Fig2d", Fig2d},
		{"Fig3", Fig3}, {"PredicatePruning", PredicatePruning},
		{"BatchVsTuple", BatchVsTuple}, {"StaticAnalysis", StaticAnalysis},
		{"RunningExample", RunningExample}, {"ParallelScaling", ParallelScaling},
	}
	var out []*Table
	for _, e := range exps {
		tb, err := e.fn(cfg)
		if err != nil {
			return out, fmt.Errorf("bench %s: %w", e.name, err)
		}
		out = append(out, tb)
	}
	return out, nil
}
