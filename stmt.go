package raven

import (
	"context"
	"fmt"
	"sync"
	"time"

	"raven/internal/ir"
	"raven/internal/plan"
	"raven/internal/rescache"
	"raven/internal/types"
)

// Param is one named execute-time argument of a prepared statement,
// bound to an @var placeholder in the SQL text. Values are strings typed
// by inference at bind time: "120" compares numerically, "true"/"false"
// become BIT, anything else stays VARCHAR. A numeric-looking value
// against a VARCHAR column therefore fails loudly with a type error
// rather than comparing as a string — unlike DECLARE session variables,
// which always bind as VARCHAR.
type Param struct {
	Name  string
	Value string
}

// P builds a Param.
func P(name, value string) Param { return Param{Name: name, Value: value} }

// Stmt is a prepared statement: parse → bind → unified IR → cross
// optimization ran once at Prepare, and every Query call reuses the
// compiled template, paying only operator lowering and execution. A Stmt
// is safe for concurrent Query calls; executions never mutate the shared
// template (parameter binding clones the affected plan nodes).
//
// Undeclared @var references in the SQL become execute-time parameters
// supplied via Query(P("name", "value"), ...). The PREDICT model name is
// the exception: it determines the optimized plan, so MODEL=@var must be
// resolvable at prepare time (DECLARE it in the prepared script).
//
// DDL or a model store invalidates the template; the next Query
// transparently re-prepares against the current catalog.
type Stmt struct {
	db   *DB
	sql  string
	opts QueryOptions
	// vars is the session-variable snapshot taken at Prepare time. Re-
	// prepares (after DDL or model stores) reuse it, so a Stmt's meaning
	// never drifts when the session later re-DECLAREs a variable.
	vars map[string]string

	mu   sync.Mutex
	plan *cachedPlan
}

// Prepare compiles a statement once for repeated execution, with default
// options. The script may contain DECLAREs (prepare-time constants) and
// exactly one SELECT; side-effecting statements are rejected.
func (db *DB) Prepare(q string) (*Stmt, error) {
	return db.PrepareWithOptions(q, DefaultQueryOptions())
}

// PrepareWithOptions compiles a statement once under explicit options.
func (db *DB) PrepareWithOptions(q string, opts QueryOptions) (*Stmt, error) {
	return db.PrepareContextWithOptions(context.Background(), q, opts)
}

// PrepareContext is Prepare under a context.
func (db *DB) PrepareContext(ctx context.Context, q string) (*Stmt, error) {
	return db.PrepareContextWithOptions(ctx, q, DefaultQueryOptions())
}

// PrepareContextWithOptions compiles a statement once under explicit
// options and a context. The compile — the CPU-heavy front half, cross
// optimization included — runs under a cost-1 admission slot when
// admission control is enabled, so bursts of prepares from a wire front
// end cannot oversubscribe the engine any more than queries can; ctx
// bounds the wait for that slot.
func (db *DB) PrepareContextWithOptions(ctx context.Context, q string, opts QueryOptions) (*Stmt, error) {
	release, err := db.admitN(ctx, 1, opts)
	if err != nil {
		return nil, err
	}
	defer release()
	s := &Stmt{db: db, sql: q, opts: opts, vars: db.varsSnapshot()}
	if _, err := s.template(); err != nil {
		return nil, err
	}
	return s, nil
}

// template returns the compiled plan, re-preparing if the catalog moved
// (DDL or model store) since it was built. Statistics-derived plans
// (UseStatistics) are specialized to the data range at compile time and
// INSERTs don't bump the catalog version, so those re-prepare every call
// rather than risk serving a stale specialization.
func (s *Stmt) template() (*cachedPlan, error) {
	cur := s.db.catalog.Version()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.plan != nil && s.plan.version == cur && !s.opts.UseStatistics {
		return s.plan, nil
	}
	p, err := s.db.planFor(s.sql, s.opts, s.vars, true)
	if err != nil {
		return nil, err
	}
	s.plan = p
	return p, nil
}

// SQL returns the statement text.
func (s *Stmt) SQL() string { return s.sql }

// ResultSchema reports the statement's output schema without executing
// it: the compiled template is lowered into an operator tree — cheap
// relative to the front half, and lowering never evaluates parameter
// placeholders — whose schema is read and which is then discarded
// unopened. Wire front ends use it to describe results (the pg extended
// protocol's Describe must answer RowDescription before any Execute).
// Like every execution it tracks the catalog: after DDL or a model
// store the template transparently re-prepares first.
func (s *Stmt) ResultSchema(ctx context.Context) (*types.Schema, error) {
	tpl, err := s.template()
	if err != nil {
		return nil, err
	}
	op, err := s.db.lower(ctx, tpl.graph, tpl.sessionKey, s.opts)
	if err != nil {
		return nil, err
	}
	sch := op.Schema()
	op.Close()
	return sch, nil
}

// Params returns the names of the execute-time parameters the statement
// expects, sorted.
func (s *Stmt) Params() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.plan == nil {
		return nil
	}
	return append([]string(nil), s.plan.params...)
}

// Query executes the prepared statement, binding params, and streams the
// result.
func (s *Stmt) Query(params ...Param) (*Rows, error) {
	return s.QueryContext(context.Background(), params...)
}

// QueryContext executes the prepared statement under a context: the
// compiled plan is reused (no parse/bind/optimize), parameters bind into
// a per-call clone, and cancellation reaches every operator and
// predictor. Prepared executions pass through the same admission control
// as ad-hoc queries (the slot is held until Rows.Close), so a fleet of
// warm statements cannot oversubscribe the engine either.
func (s *Stmt) QueryContext(ctx context.Context, params ...Param) (*Rows, error) {
	start := time.Now()
	db := s.db
	// Result-cache lookup before admission, keyed with the prepare-time
	// variable snapshot (exactly what template() compiles with) plus the
	// call's parameter values. A hit costs zero scheduler slots.
	var fl *rescache.Flight[*resultEntry]
	var key string
	if db.resultCacheEligible(ctx, s.opts, s.sql) {
		key = db.resultKey(s.sql, s.opts, true, s.vars, params)
		if nerr := db.negLookup(key); nerr != nil {
			return nil, nerr
		}
		rows, hit, flight, err := db.resultLookup(ctx, key, s.opts, start)
		if hit || err != nil {
			return rows, err
		}
		fl = flight
	}
	release, err := db.admit(ctx, s.opts)
	if err != nil {
		fl.Cancel()
		return nil, err
	}
	tpl, err := s.template()
	if err != nil {
		release()
		fl.Cancel()
		// A re-prepare failure is a compile error like any other: the
		// catalog moved and the statement no longer binds.
		db.noteNegative(key, err)
		return nil, err
	}
	return db.executeTemplate(ctx, tpl, s.opts, params, release, start, fl)
}

// executeTemplate is the shared back half of every parameterized
// execution path (Stmt.QueryContext, QueryContextParams): bind params
// into a per-call clone, lower, stream. It owns release — and the
// result-cache flight, when the caller is a leader — from the moment it
// is called: every error path returns the admission slot and cancels
// the flight (waking waiters to execute for themselves), success hands
// both to the returned Rows via the tee.
func (db *DB) executeTemplate(ctx context.Context, tpl *cachedPlan, opts QueryOptions, params []Param, release func(), start time.Time, fl *rescache.Flight[*resultEntry]) (*Rows, error) {
	graph := tpl.graph
	if len(tpl.params) > 0 || len(params) > 0 {
		vals, err := paramValues(tpl.params, params)
		if err != nil {
			release()
			fl.Cancel()
			return nil, err
		}
		graph, err = bindGraphParams(graph, vals)
		if err != nil {
			release()
			fl.Cancel()
			return nil, err
		}
	}
	op, err := db.lower(ctx, graph, tpl.sessionKey, opts)
	if err != nil {
		release()
		fl.Cancel()
		return nil, err
	}
	return leaderRows(ctx, db, op, fl, tpl, start, release)
}

// QueryContextParams is the ad-hoc parameterized query surface: like
// QueryContextWithOptions but compiled through the prepare surface, so
// undeclared @vars bind from params with type inference instead of
// erroring. Admission is acquired before compilation (unlike a
// Prepare-then-Query pair, where the compile runs un-gated), which makes
// this the right engine call for a wire front end handling untrusted
// bursts of parameterized SQL. Side-effecting statements are rejected,
// exactly as in Prepare.
func (db *DB) QueryContextParams(ctx context.Context, q string, opts QueryOptions, params ...Param) (*Rows, error) {
	start := time.Now()
	vars := db.varsSnapshot()
	var fl *rescache.Flight[*resultEntry]
	var key string
	if db.resultCacheEligible(ctx, opts, q) {
		key = db.resultKey(q, opts, true, vars, params)
		if nerr := db.negLookup(key); nerr != nil {
			return nil, nerr
		}
		rows, hit, flight, err := db.resultLookup(ctx, key, opts, start)
		if hit || err != nil {
			return rows, err
		}
		fl = flight
	}
	release, err := db.admit(ctx, opts)
	if err != nil {
		fl.Cancel()
		return nil, err
	}
	tpl, err := db.planFor(q, opts, vars, true)
	if err != nil {
		release()
		fl.Cancel()
		db.noteNegative(key, err)
		return nil, err
	}
	return db.executeTemplate(ctx, tpl, opts, params, release, start, fl)
}

// paramValues validates the supplied params against the declared set:
// every declared parameter needs a value, and unknown names are rejected
// (they are typos, not extensions).
func paramValues(declared []string, supplied []Param) (map[string]string, error) {
	want := make(map[string]bool, len(declared))
	for _, name := range declared {
		want[name] = true
	}
	vals := make(map[string]string, len(supplied))
	for _, p := range supplied {
		if !want[p.Name] {
			return nil, fmt.Errorf("raven: statement has no parameter @%s (expects %v)", p.Name, declared)
		}
		if _, dup := vals[p.Name]; dup {
			return nil, fmt.Errorf("raven: parameter @%s bound twice", p.Name)
		}
		vals[p.Name] = p.Value
	}
	for _, name := range declared {
		if _, ok := vals[name]; !ok {
			return nil, fmt.Errorf("raven: no value for parameter @%s", name)
		}
	}
	return vals, nil
}

// collectGraphParams gathers the unbound parameter names across every
// relational fragment of the IR graph.
func collectGraphParams(g *ir.Graph) []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range g.Chain() {
		if rel, ok := n.(*ir.RelNode); ok {
			for _, name := range plan.CollectParams(rel.Plan) {
				if !seen[name] {
					seen[name] = true
					out = append(out, name)
				}
			}
		}
	}
	return out
}

// bindGraphParams returns the graph with parameters substituted as
// literals, cloning only the nodes on the path to a change so the shared
// template stays immutable under concurrent executions.
func bindGraphParams(g *ir.Graph, vals map[string]string) (*ir.Graph, error) {
	root, changed, err := bindNodeParams(g.Root, vals)
	if err != nil {
		return nil, err
	}
	if !changed {
		return g, nil
	}
	return &ir.Graph{Root: root}, nil
}

func bindNodeParams(n ir.Node, vals map[string]string) (ir.Node, bool, error) {
	if n == nil {
		return nil, false, nil
	}
	in, inChanged, err := bindNodeParams(n.Input(), vals)
	if err != nil {
		return nil, false, err
	}
	switch x := n.(type) {
	case *ir.RelNode:
		p, err := plan.BindParams(x.Plan, vals)
		if err != nil {
			return nil, false, err
		}
		if p == x.Plan && !inChanged {
			return n, false, nil
		}
		nn := *x
		nn.Plan = p
		nn.In = in
		return &nn, true, nil
	case *ir.SplitNode:
		left, lc, err := bindNodeParams(x.Left, vals)
		if err != nil {
			return nil, false, err
		}
		right, rc, err := bindNodeParams(x.Right, vals)
		if err != nil {
			return nil, false, err
		}
		if !inChanged && !lc && !rc {
			return n, false, nil
		}
		nn := *x
		nn.In, nn.Left, nn.Right = in, left, right
		return &nn, true, nil
	case *ir.TransformNode:
		if !inChanged {
			return n, false, nil
		}
		nn := *x
		nn.In = in
		return &nn, true, nil
	case *ir.ModelNode:
		if !inChanged {
			return n, false, nil
		}
		nn := *x
		nn.In = in
		return &nn, true, nil
	case *ir.LANode:
		if !inChanged {
			return n, false, nil
		}
		nn := *x
		nn.In = in
		return &nn, true, nil
	case *ir.UDFNode:
		if !inChanged {
			return n, false, nil
		}
		nn := *x
		nn.In = in
		return &nn, true, nil
	default:
		if inChanged {
			return nil, false, fmt.Errorf("raven: cannot rebind parameters under IR node %T", n)
		}
		return n, false, nil
	}
}
