package raven

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/train"
	"raven/internal/types"
)

// fig1Tree hand-builds the running example's decision tree (Fig 1) over
// the hospital feature order: pregnant(0), age(1), gender(2), weight(3),
// bp(4), glucose(5), hematocrit(6), fetal_hr(7), amnio(8). The left
// (pregnant=0) branch tests gender and age; the right branch tests bp —
// so predicate pruning on pregnant=1 kills the gender/age subtree, and
// projection pushdown then drops gender and the prenatal_tests features,
// letting join elimination fire, exactly as §2 narrates.
func fig1Tree() *ml.DecisionTree {
	t := &ml.DecisionTree{NFeat: 9}
	add := func(f int, thr float64, v float64) int {
		t.Feature = append(t.Feature, f)
		t.Threshold = append(t.Threshold, thr)
		t.Left = append(t.Left, -1)
		t.Right = append(t.Right, -1)
		t.Value = append(t.Value, v)
		return len(t.Feature) - 1
	}
	root := add(0, 0.5, 0)   // pregnant <= 0.5 ?
	gender := add(2, 0.5, 0) // gender <= 0.5 ?
	ageM := add(1, 35, 0)    //   male: age <= 35 ?
	l1 := add(-1, 0, 0.05)   //     young male
	l2 := add(-1, 0, 0.15)   //     older male
	ageF := add(1, 35, 0)    //   female: age <= 35 ?
	l3 := add(-1, 0, 0.10)   //     young female
	l4 := add(-1, 0, 0.20)   //     older female
	bp1 := add(4, 140, 0)    // pregnant: bp <= 140 ?
	bp2 := add(4, 120, 0)    //   bp <= 120 ?
	l5 := add(-1, 0, 0.30)   //     normal bp
	l6 := add(-1, 0, 0.55)   //     elevated bp
	l7 := add(-1, 0, 0.90)   //   hypertensive
	t.Left[root], t.Right[root] = gender, bp1
	t.Left[gender], t.Right[gender] = ageM, ageF
	t.Left[ageM], t.Right[ageM] = l1, l2
	t.Left[ageF], t.Right[ageF] = l3, l4
	t.Left[bp1], t.Right[bp1] = bp2, l7
	t.Left[bp2], t.Right[bp2] = l5, l6
	return t
}

// hospitalDB builds an engine loaded with the hospital workload and the
// Fig 1 decision-tree pipeline stored as "duration_of_stay".
func hospitalDB(t testing.TB, rows int) (*DB, *data.Hospital) {
	t.Helper()
	db := MustOpen()
	h, err := data.GenHospital(db.Catalog(), rows, 4000, 42)
	if err != nil {
		t.Fatal(err)
	}
	pipe := &ml.Pipeline{Final: fig1Tree(), InputColumns: h.FeatureCols}
	if err := db.StoreModel("duration_of_stay", pipe); err != nil {
		t.Fatal(err)
	}
	return db, h
}

// runningExampleQuery is the paper's Fig 1 inference query adapted to the
// generated schema.
const runningExampleQuery = `
DECLARE @model = 'duration_of_stay';
WITH data AS (
  SELECT * FROM patient_info AS pi
  JOIN blood_tests AS bt ON pi.id = bt.id
  JOIN prenatal_tests AS pt ON bt.id = pt.id
)
SELECT d.id, p.length_of_stay
FROM PREDICT(MODEL = @model, DATA = data AS d)
WITH (length_of_stay FLOAT) AS p
WHERE d.pregnant = 1 AND p.length_of_stay > 0.5;`

func TestExecDDLAndInsert(t *testing.T) {
	db := MustOpen()
	if err := db.Exec(`CREATE TABLE t (id INT PRIMARY KEY, x FLOAT, name VARCHAR(10), ok BIT);
		INSERT INTO t VALUES (1, 2.5, 'a', TRUE), (2, 3.5, 'b', FALSE)`); err != nil {
		t.Fatal(err)
	}
	out, err := db.QuerySQLOnly("SELECT id, x FROM t WHERE ok = TRUE")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Col("x").Floats[0] != 2.5 {
		t.Errorf("result = %v", out)
	}
	if err := db.Exec("DROP TABLE t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QuerySQLOnly("SELECT * FROM t"); err == nil {
		t.Error("dropped table should not resolve")
	}
	if err := db.Exec("SELECT 1"); err == nil {
		t.Error("Exec of SELECT should fail")
	}
}

func TestRunningExampleEndToEnd(t *testing.T) {
	db, _ := hospitalDB(t, 5000)
	res, err := db.Query(runningExampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Len() == 0 {
		t.Fatal("no rows returned")
	}
	// applied rules must include pruning and either inlining or relational
	joined := strings.Join(res.AppliedRules, ",")
	if !strings.Contains(joined, "predicate-based-model-pruning") {
		t.Errorf("pruning did not fire: %v", res.AppliedRules)
	}
	if !strings.Contains(joined, "model-inlining") {
		t.Errorf("inlining did not fire: %v", res.AppliedRules)
	}
	// every returned row satisfies the predicates
	los := res.Batch.Col("length_of_stay")
	for i := 0; i < res.Batch.Len(); i++ {
		if los.Floats[i] <= 0.5 {
			t.Fatalf("row %d violates predicate: %v", i, los.Floats[i])
		}
	}
}

// resultKey builds an order-independent multiset fingerprint of a result,
// rounding floats to 1e-6 so inlined-CASE and interpreted trees compare
// equal despite fp noise.
func resultKey(b *types.Batch) []string {
	var keys []string
	for i := 0; i < b.Len(); i++ {
		var sb strings.Builder
		for _, v := range b.Vecs {
			switch v.Type {
			case types.Float:
				fmt.Fprintf(&sb, "%.6f", v.Floats[i])
			default:
				fmt.Fprintf(&sb, "%v", v.Value(i))
			}
			sb.WriteByte('|')
		}
		keys = append(keys, sb.String())
	}
	sort.Strings(keys)
	return keys
}

func TestOptimizedMatchesUnoptimized(t *testing.T) {
	db, _ := hospitalDB(t, 8000)
	optimized, err := db.Query(runningExampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := db.QueryWithOptions(runningExampleQuery, QueryOptions{CrossOptimize: false, Mode: ModeInProcess, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := resultKey(optimized.Batch)
	b := resultKey(plain.Batch)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: optimized %d vs plain %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}

func TestAllModesAgree(t *testing.T) {
	db, _ := hospitalDB(t, 3000)
	q := `SELECT d.id, p.score FROM PREDICT(MODEL='duration_of_stay',
		DATA=(SELECT * FROM patient_info AS pi
		      JOIN blood_tests AS bt ON pi.id = bt.id
		      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
		WITH (score FLOAT) AS p WHERE d.age > 50`
	db.Runtime().ExternalStartup = 0 // keep the test fast
	var ref []string
	for _, mode := range []Mode{ModeInProcess, ModeInProcessNN, ModeOutOfProcess, ModeContainer} {
		res, err := db.QueryWithOptions(q, QueryOptions{
			CrossOptimize: false, Mode: mode, Parallelism: 1,
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		key := resultKey(res.Batch)
		if ref == nil {
			ref = key
			continue
		}
		if len(key) != len(ref) {
			t.Fatalf("mode %v: %d rows vs %d", mode, len(key), len(ref))
		}
		for i := range key {
			if key[i] != ref[i] {
				t.Fatalf("mode %v row %d differs: %s vs %s", mode, i, key[i], ref[i])
			}
		}
	}
}

func TestParallelMatchesSequentialQuery(t *testing.T) {
	db, _ := hospitalDB(t, 60000)
	q := `SELECT d.id, p.score FROM PREDICT(MODEL='duration_of_stay',
		DATA=(SELECT * FROM patient_info AS pi
		      JOIN blood_tests AS bt ON pi.id = bt.id
		      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
		WITH (score FLOAT) AS p`
	seq, err := db.QueryWithOptions(q, QueryOptions{CrossOptimize: true, Mode: ModeInProcess, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.QueryWithOptions(q, QueryOptions{CrossOptimize: true, Mode: ModeInProcess, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, b := resultKey(seq.Batch), resultKey(par.Batch)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestSessionCacheWarmsAcrossQueries(t *testing.T) {
	db, _ := hospitalDB(t, 2000)
	q := `SELECT p.score FROM PREDICT(MODEL='duration_of_stay',
		DATA=(SELECT * FROM patient_info AS pi
		      JOIN blood_tests AS bt ON pi.id = bt.id
		      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
		WITH (score FLOAT) AS p`
	opts := QueryOptions{CrossOptimize: false, Mode: ModeInProcessNN, Parallelism: 1}
	if _, err := db.QueryWithOptions(q, opts); err != nil {
		t.Fatal(err)
	}
	_, misses1 := db.Runtime().Cache.Stats()
	if _, err := db.QueryWithOptions(q, opts); err != nil {
		t.Fatal(err)
	}
	hits, misses2 := db.Runtime().Cache.Stats()
	if misses2 != misses1 {
		t.Errorf("second run recompiled the session (misses %d -> %d)", misses1, misses2)
	}
	if hits == 0 {
		t.Error("second run did not hit the session cache")
	}
	// Disabled cache must not touch the shared cache.
	opts.DisableSessionCache = true
	if _, err := db.QueryWithOptions(q, opts); err != nil {
		t.Fatal(err)
	}
	if db.Runtime().Cache.Len() > 1 {
		t.Error("uncached run polluted the session cache")
	}
}

func TestModelUpdateInvalidatesResults(t *testing.T) {
	db, h := hospitalDB(t, 1000)
	q := `SELECT p.score FROM PREDICT(MODEL='duration_of_stay',
		DATA=patient_info AS d) WITH (score FLOAT) AS p`
	// This model only reads patient_info columns.
	tree := train.FitTree(h.TrainX, h.TrainY, train.TreeOptions{MaxDepth: 3, MinLeaf: 50})
	sub, err := tree.RemapFeatures(map[int]int{0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5, 6: 6, 7: 7, 8: 8}, 9)
	if err != nil {
		t.Fatal(err)
	}
	_ = sub
	pipeA := &ml.Pipeline{
		Final:        &ml.LogisticRegression{W: []float64{0, 0.01, 0, 0}, B: 0},
		InputColumns: []string{"pregnant", "age", "gender", "weight"},
	}
	if err := db.StoreModel("duration_of_stay", pipeA); err != nil {
		t.Fatal(err)
	}
	r1, err := db.QueryWithOptions(q, QueryOptions{CrossOptimize: false, Mode: ModeInProcessNN})
	if err != nil {
		t.Fatal(err)
	}
	pipeB := &ml.Pipeline{
		Final:        &ml.LogisticRegression{W: []float64{0, -0.01, 0, 0}, B: 0},
		InputColumns: []string{"pregnant", "age", "gender", "weight"},
	}
	if err := db.StoreModel("duration_of_stay", pipeB); err != nil {
		t.Fatal(err)
	}
	r2, err := db.QueryWithOptions(q, QueryOptions{CrossOptimize: false, Mode: ModeInProcessNN})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Batch.Col("score").Floats[0] == r2.Batch.Col("score").Floats[0] {
		t.Error("model update did not change predictions (stale session?)")
	}
}

func TestExplainShowsStages(t *testing.T) {
	db, _ := hospitalDB(t, 1000)
	out, err := db.Explain(runningExampleQuery, DefaultQueryOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"logical plan", "unified IR", "optimized IR", "regenerated SQL", "MLD"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestProjectionPushdownNarrowsFlights(t *testing.T) {
	db := MustOpen()
	fl, err := data.GenFlightsWide(db.Catalog(), 5000, 60, 8, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	lr := train.FitLogReg(fl.TrainX, fl.TrainY, train.LogRegOptions{L1: 0.05, Seed: 1, Epochs: 60})
	if lr.Sparsity() < 0.3 {
		t.Fatalf("sparsity too low for the test: %v", lr.Sparsity())
	}
	pipe := &ml.Pipeline{Final: lr, InputColumns: fl.FeatureCols}
	if err := db.StoreModel("delay", pipe); err != nil {
		t.Fatal(err)
	}
	q := `SELECT p.prob FROM PREDICT(MODEL='delay', DATA=flights_features AS d) WITH (prob FLOAT) AS p`
	opt, err := db.QueryWithOptions(q, QueryOptions{CrossOptimize: true, Mode: ModeInProcess, DisableNNTranslation: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(opt.AppliedRules, ","), "model-projection-pushdown") {
		t.Errorf("projection pushdown did not fire: %v", opt.AppliedRules)
	}
	plain, err := db.QueryWithOptions(q, QueryOptions{CrossOptimize: false, Mode: ModeInProcess})
	if err != nil {
		t.Fatal(err)
	}
	a, b := resultKey(opt.Batch), resultKey(plain.Batch)
	if len(a) != len(b) {
		t.Fatalf("row counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs after projection pushdown", i)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	db := MustOpen()
	if _, err := db.Query("CREATE TABLE x (a INT)"); err == nil {
		t.Error("Query without SELECT should fail")
	}
	if _, err := db.Query("SELECT p.s FROM PREDICT(MODEL='missing', DATA=t AS d) WITH (s FLOAT) AS p"); err == nil {
		t.Error("missing model/table should fail")
	}
	if err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT p.s FROM PREDICT(MODEL='missing', DATA=t AS d) WITH (s FLOAT) AS p"); err == nil {
		t.Error("missing model should fail")
	}
	if err := db.Exec("INSERT INTO t VALUES ('str')"); err == nil {
		t.Error("type-mismatched insert should fail")
	}
	if err := db.Exec("INSERT INTO t VALUES (1, 2)"); err == nil {
		t.Error("arity-mismatched insert should fail")
	}
}
