package bench

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"raven"
	"raven/internal/ml"
	"raven/internal/server"
)

// CachedServe measures what the semantic result cache buys on the wire
// path and proves it never trades freshness for speed. Three latency
// series over the same PREDICT query: cold /query (plan cache disabled,
// full compile per call), warm prepared execution (compiled template
// reused, but the plan still runs), and cache hits (the result itself is
// session state — no compile, no execution, no scheduler slot). A
// staleness probe then interleaves cached reads with every kind of
// invalidating write — INSERT (data version), DROP/CREATE (catalog
// version), StoreModel (catalog version) — and fails the experiment on
// a single stale row; the recorded note carries the "stale=0" proof
// string ravenbench -check requires. Finally an admission-saturation
// phase reruns cached reads against an engine with one query slot and a
// zero-depth queue while uncached traffic draws 429s, asserting cache
// hits are admission-free (the "hits_429=0" note).
func CachedServe(cfg Config) (*Table, error) {
	t := &Table{
		ID:         "CachedServe",
		Title:      "semantic result cache on the wire path: hit speedup, freshness, admission-free hits",
		PaperShape: "warm session state amortizes work across invocations (§5 obs ii), extended from plans to results",
	}
	rows, trees, perClient := 4000, 8, 8
	if cfg.Quick {
		rows, trees, perClient = 2000, 4, 4
	}
	const (
		nc         = 4
		cacheBytes = 32 << 20
	)
	// An aggregate over the standard serving PREDICT: the full join +
	// forest inference runs on every miss but the response is one row,
	// so the series compare execution cost, not NDJSON serialization
	// (which hits and misses pay identically).
	q := `SELECT COUNT(*) AS n FROM PREDICT(MODEL='duration_of_stay',
		DATA=(SELECT * FROM patient_info AS pi
		      JOIN blood_tests AS bt ON pi.id = bt.id
		      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
		WITH (score FLOAT) AS p WHERE p.score > 0.1`

	// Phase 1+2: latency series and staleness probe share one stack.
	if err := func() (reterr error) {
		db, base, shutdown, err := servingBench(cfg, rows, trees, raven.WithResultCache(cacheBytes))
		if err != nil {
			return err
		}
		defer func() {
			if e := shutdown(); e != nil && reterr == nil {
				reterr = e
			}
		}()
		c := &server.Client{Base: base, HTTP: &http.Client{}}

		// Warm the session (model load, first compile) without touching
		// the result cache — the cold series measures compiles, not
		// one-time model deserialization.
		if _, err := c.Query(server.QueryRequest{SQL: q, NoCache: true}); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}

		coldReq := server.QueryRequest{SQL: q, NoCache: true, Options: &server.QueryOptions{DisablePlanCache: true}}
		coldLat, coldElapsed, err := hammerReq(base, "", coldReq, nc, perClient)
		if err != nil {
			return fmt.Errorf("cold: %w", err)
		}

		pr, err := c.Prepare(server.QueryRequest{SQL: q})
		if err != nil {
			return err
		}
		warmReq := server.QueryRequest{NoCache: true}
		if _, _, err := hammerReq(base, pr.ID, warmReq, 1, 1); err != nil { // warm the template
			return err
		}
		warmLat, warmElapsed, err := hammerReq(base, pr.ID, warmReq, nc, perClient)
		if err != nil {
			return fmt.Errorf("warm prepared: %w", err)
		}

		// Populate once, then every request is a hit (the singleflight
		// collapse of concurrent misses is rescache's own test domain).
		if _, err := c.Query(server.QueryRequest{SQL: q}); err != nil {
			return err
		}
		hitLat, hitElapsed, err := hammerReq(base, "", server.QueryRequest{SQL: q}, nc, perClient)
		if err != nil {
			return fmt.Errorf("cache hit: %w", err)
		}
		st := db.Stats().ResultCache
		if st == nil || st.Hits < uint64(nc*perClient) {
			return fmt.Errorf("cache hits not recorded: %+v", st)
		}

		total := float64(nc * perClient)
		coldQPS := total / coldElapsed.Seconds()
		warmQPS := total / warmElapsed.Seconds()
		hitQPS := total / hitElapsed.Seconds()
		speedup := hitQPS / warmQPS
		t.AddMillis("mean latency", "cold /query", mean(coldLat), fmt.Sprintf("%.1f q/s (plan cache off, full compile per call)", coldQPS))
		t.AddMillis("mean latency", "warm prepared", mean(warmLat), fmt.Sprintf("%.1f q/s (compiled template reused, plan still executes)", warmQPS))
		t.AddMillis("mean latency", "cache hit", mean(hitLat),
			fmt.Sprintf("%.1f q/s, %.1fx warm prepared (hits %d, misses %d, %d bytes)", hitQPS, speedup, st.Hits, st.Misses, st.Bytes))
		// The acceptance gate: a hit skips compile and execution, so it
		// must beat even prepared execution by an order of magnitude.
		// Race instrumentation compresses the ratio (both paths pay the
		// same instrumented wire cost); the recording still carries it.
		if !raceBuild && speedup < 10 {
			return fmt.Errorf("cache hit only %.1fx warm prepared q/s (%.1f vs %.1f), want >= 10x", speedup, hitQPS, warmQPS)
		}

		stale := 0
		probeStart := time.Now()

		// INSERT rounds: a cached COUNT must track every appended row.
		if err := c.Exec("CREATE TABLE probe_kv (id INT, v FLOAT)"); err != nil {
			return err
		}
		countQ := "SELECT COUNT(*) AS n FROM probe_kv"
		insertRounds := 6
		for i := 1; i <= insertRounds; i++ {
			// Read first so an entry exists that the INSERT must kill.
			if _, err := c.Query(server.QueryRequest{SQL: countQ}); err != nil {
				return err
			}
			if err := c.Exec(fmt.Sprintf("INSERT INTO probe_kv VALUES (%d, 1.0)", i)); err != nil {
				return err
			}
			res, err := c.Query(server.QueryRequest{SQL: countQ})
			if err != nil {
				return err
			}
			if got := asFloat(res.Rows[0][0]); got != float64(i) {
				stale++
			}
		}

		// DDL rounds: DROP + re-CREATE with more rows bumps the catalog
		// version; a stale entry would keep serving the old count.
		ddlRounds := 3
		ddlQ := "SELECT COUNT(*) AS n FROM probe_ddl"
		for i := 1; i <= ddlRounds; i++ {
			script := "CREATE TABLE probe_ddl (id INT)"
			if i > 1 {
				script = "DROP TABLE probe_ddl; " + script
			}
			for j := 0; j < i; j++ {
				script += fmt.Sprintf("; INSERT INTO probe_ddl VALUES (%d)", j)
			}
			if err := c.Exec(script); err != nil {
				return err
			}
			res, err := c.Query(server.QueryRequest{SQL: ddlQ})
			if err != nil {
				return err
			}
			if got := asFloat(res.Rows[0][0]); got != float64(i) {
				stale++
			}
			// Re-read so the next round's DDL has a live entry to kill.
			if _, err := c.Query(server.QueryRequest{SQL: ddlQ}); err != nil {
				return err
			}
		}

		// StoreModel rounds: replacing the model must invalidate cached
		// PREDICT results — a stale hit would keep the old constant.
		modelQ := `SELECT p.score FROM PREDICT(MODEL='probe_model',
			DATA=(SELECT * FROM patient_info AS pi WHERE pi.id < 5) AS d)
			WITH (score FLOAT) AS p`
		modelRounds := 3
		for i := 1; i <= modelRounds; i++ {
			leaf := &ml.DecisionTree{
				NFeat: 1, Feature: []int{-1}, Threshold: []float64{0},
				Left: []int{-1}, Right: []int{-1}, Value: []float64{float64(i)},
			}
			if err := db.StoreModel("probe_model", &ml.Pipeline{Final: leaf, InputColumns: []string{"age"}}); err != nil {
				return err
			}
			res, err := c.Query(server.QueryRequest{SQL: modelQ})
			if err != nil {
				return err
			}
			for _, row := range res.Rows {
				if asFloat(row[0]) != float64(i) {
					stale++
					break
				}
			}
		}

		probeMS := float64(time.Since(probeStart).Microseconds()) / 1000
		if stale > 0 {
			return fmt.Errorf("staleness probe observed %d stale reads across INSERT/DDL/StoreModel", stale)
		}
		inv := db.Stats().ResultCache.Invalidations
		t.AddMillis("staleness probe", "INSERT+DDL+StoreModel", probeMS,
			fmt.Sprintf("stale=0 across %d INSERT, %d DDL and %d model-store rounds (%d invalidations)",
				insertRounds, ddlRounds, modelRounds, inv))
		return nil
	}(); err != nil {
		return nil, err
	}

	// Phase 3: cache hits are admitted with zero scheduler slots. One
	// query slot, zero queue depth: any overlapping uncached query is
	// rejected with 429, yet every cached read must be served.
	if err := func() (reterr error) {
		db, base, shutdown, err := servingBench(cfg, rows, trees,
			raven.WithResultCache(cacheBytes),
			raven.WithMaxConcurrentQueries(1),
			raven.WithSchedulerQueue(0, 0))
		if err != nil {
			return err
		}
		defer func() {
			if e := shutdown(); e != nil && reterr == nil {
				reterr = e
			}
		}()
		c := &server.Client{Base: base, HTTP: &http.Client{}}
		if _, err := c.Query(server.QueryRequest{SQL: q}); err != nil { // populate
			return err
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		var bg429, bgOK atomic.Int64
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				hc := &http.Client{Transport: &http.Transport{}}
				defer hc.CloseIdleConnections()
				bc := &server.Client{Base: base, HTTP: hc}
				for {
					select {
					case <-stop:
						return
					default:
					}
					_, err := bc.Query(server.QueryRequest{SQL: q, NoCache: true})
					var he *server.HTTPError
					if errors.As(err, &he) && he.Status == http.StatusTooManyRequests {
						bg429.Add(1)
					} else if err == nil {
						bgOK.Add(1)
					}
				}
			}()
		}
		fail := func(err error) error {
			close(stop)
			wg.Wait()
			return err
		}
		// Saturation is proven, not assumed: wait until the uncached
		// traffic has actually drawn a rejection.
		for deadline := time.Now().Add(10 * time.Second); bg429.Load() == 0; {
			if time.Now().After(deadline) {
				return fail(fmt.Errorf("admission never saturated: no 429 from uncached traffic"))
			}
			time.Sleep(time.Millisecond)
		}

		const cachedReads = 50
		var lat []float64
		for i := 0; i < cachedReads; i++ {
			t0 := time.Now()
			_, err := c.Query(server.QueryRequest{SQL: q})
			if err != nil {
				var he *server.HTTPError
				if errors.As(err, &he) && he.Status == http.StatusTooManyRequests {
					return fail(fmt.Errorf("cached read %d rejected with 429: hits must not consume scheduler slots", i))
				}
				return fail(err)
			}
			lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
		}
		close(stop)
		wg.Wait()
		hits := db.Stats().ResultCache.Hits
		t.AddMillis("admission-free hits", "1 slot, queue=0, saturated", mean(lat),
			fmt.Sprintf("hits_429=0 over %d cached reads while uncached traffic drew %d rejections (%d admitted); %d hits total",
				cachedReads, bg429.Load(), bgOK.Load(), hits))
		return nil
	}(); err != nil {
		return nil, err
	}
	return t, nil
}

// hammerReq is hammer for an arbitrary request body: stmtID routes the
// prepared path, empty stmtID posts /query. Used by CachedServe so the
// three variants differ only in the request, not the harness.
func hammerReq(base, stmtID string, req server.QueryRequest, nc, perClient int) ([]float64, time.Duration, error) {
	type result struct {
		lat []float64
		err error
	}
	results := make(chan result, nc)
	start := time.Now()
	for i := 0; i < nc; i++ {
		go func() {
			hc := &http.Client{Transport: &http.Transport{}}
			defer hc.CloseIdleConnections()
			c := &server.Client{Base: base, HTTP: hc}
			var lats []float64
			for j := 0; j < perClient; j++ {
				t0 := time.Now()
				var res *server.StreamResult
				var err error
				if stmtID != "" {
					res, err = c.StmtQuery(stmtID, req)
				} else {
					res, err = c.Query(req)
				}
				if err != nil {
					results <- result{nil, err}
					return
				}
				if len(res.Rows) == 0 {
					results <- result{nil, fmt.Errorf("empty result under load")}
					return
				}
				lats = append(lats, float64(time.Since(t0).Microseconds())/1000)
			}
			results <- result{lats, nil}
		}()
	}
	var all []float64
	for i := 0; i < nc; i++ {
		r := <-results
		if r.err != nil {
			return nil, 0, r.err
		}
		all = append(all, r.lat...)
	}
	return all, time.Since(start), nil
}

// asFloat normalizes a decoded NDJSON cell to float64 (COUNT comes back
// as a JSON number; ints and floats both land here).
func asFloat(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	case int:
		return float64(x)
	}
	return -1
}
