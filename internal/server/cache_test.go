package server

import (
	"testing"

	"raven"
)

// TestWireResultCache drives the engine result cache end-to-end over the
// wire: repeated reads hit, no_cache bypasses on both the ad-hoc and
// prepared paths, an INSERT through /query invalidates exactly the
// entries that read the table, and /stats surfaces the counters.
func TestWireResultCache(t *testing.T) {
	db := raven.MustOpen(raven.WithResultCache(1 << 20))
	c, _, _ := startServer(t, db, Options{})

	if err := c.Exec(`CREATE TABLE kv (k INT PRIMARY KEY, v FLOAT); INSERT INTO kv VALUES (1, 10.5), (2, 20.5)`); err != nil {
		t.Fatal(err)
	}

	const sel = `SELECT k, v FROM kv`
	r1, err := c.Query(QueryRequest{SQL: sel})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Query(QueryRequest{SQL: sel})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fingerprint() != r2.Fingerprint() || len(r2.Rows) != 2 {
		t.Fatalf("cached read diverged: %q vs %q", r1.Fingerprint(), r2.Fingerprint())
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	rc := st.Engine.ResultCache
	if rc == nil {
		t.Fatal("stats carry no result_cache section")
	}
	if rc.Hits != 1 || rc.Misses != 1 {
		t.Fatalf("hits=%d misses=%d after identical reads, want 1/1", rc.Hits, rc.Misses)
	}

	// no_cache: same SQL, but neither served from nor admitted to the cache.
	if _, err := c.Query(QueryRequest{SQL: sel, NoCache: true}); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if rc2 := st.Engine.ResultCache; rc2.Hits != 1 || rc2.Misses != 1 {
		t.Fatalf("no_cache touched the cache: hits=%d misses=%d", rc2.Hits, rc2.Misses)
	}

	// INSERT over the wire must invalidate the cached read — the catalog
	// version does not move on INSERT, so this exercises the data-version
	// path end-to-end.
	if err := c.Exec(`INSERT INTO kv VALUES (3, 30.5)`); err != nil {
		t.Fatal(err)
	}
	r3, err := c.Query(QueryRequest{SQL: sel})
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Rows) != 3 {
		t.Fatalf("stale read after wire INSERT: %d rows, want 3", len(r3.Rows))
	}
}

// TestWireResultCachePrepared covers the prepared path: hits keyed by
// parameter values, and the per-request no_cache flag travelling by
// context (a Stmt's options are fixed at prepare time).
func TestWireResultCachePrepared(t *testing.T) {
	db := raven.MustOpen(raven.WithResultCache(1 << 20))
	c, _, _ := startServer(t, db, Options{})

	if err := c.Exec(`CREATE TABLE kv (k INT PRIMARY KEY, v FLOAT); INSERT INTO kv VALUES (1, 10.5), (2, 20.5)`); err != nil {
		t.Fatal(err)
	}
	pr, err := c.Prepare(QueryRequest{SQL: `SELECT k, v FROM kv WHERE k >= @lo`})
	if err != nil {
		t.Fatal(err)
	}
	q := func(lo string, noCache bool) int {
		t.Helper()
		res, err := c.StmtQuery(pr.ID, QueryRequest{Params: map[string]string{"lo": lo}, NoCache: noCache})
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Rows)
	}
	if n := q("1", false); n != 2 {
		t.Fatalf("lo=1: %d rows", n)
	}
	q("1", false) // hit
	if n := q("2", false); n != 1 {
		t.Fatalf("lo=2: %d rows (param must key the cache)", n)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	rc := st.Engine.ResultCache
	if rc.Hits != 1 || rc.Misses != 2 {
		t.Fatalf("prepared path hits=%d misses=%d, want 1/2", rc.Hits, rc.Misses)
	}
	q("1", true) // no_cache via context: no lookup, no population
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if rc2 := st.Engine.ResultCache; rc2.Hits != 1 || rc2.Misses != 2 {
		t.Fatalf("prepared no_cache touched the cache: hits=%d misses=%d", rc2.Hits, rc2.Misses)
	}
}
