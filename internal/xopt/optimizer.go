package xopt

import (
	"raven/internal/expr"
	"raven/internal/ir"
	"raven/internal/plan"
	"raven/internal/relopt"
)

// Options selects which rules run. The zero value disables everything;
// DefaultOptions enables the paper's standard set.
type Options struct {
	PredicateModelPruning   bool
	UseDataStatistics       bool // derive predicates from table stats (§4.1)
	ModelProjectionPushdown bool
	ModelInlining           bool
	NNTranslation           bool
	UseGPU                  bool // LA nodes request the simulated accelerator
	ModelQuerySplitting     bool
	// Relational enables the standard DB optimizations pass over the
	// source plan (predicate/projection pushdown, join elimination).
	Relational bool
	RelOpt     *relopt.Optimizer
}

// DefaultOptions enables the heuristic rule set of §4.3: cross-IR
// information passing first, then operator transformations, then standard
// relational optimization. Inlining wins over NN translation for small
// trees, so both default on and the driver prefers inlining when it fires.
func DefaultOptions(ro *relopt.Optimizer) Options {
	return Options{
		PredicateModelPruning:   true,
		ModelProjectionPushdown: true,
		ModelInlining:           true,
		NNTranslation:           true,
		Relational:              true,
		RelOpt:                  ro,
	}
}

// Result reports what the optimizer did.
type Result struct {
	Graph   *ir.Graph
	Applied []string
}

// Optimize runs the heuristic cross optimizer: rules fire in a fixed
// order, each at most once, mirroring the paper's initial (pre-Cascades)
// optimizer (§4.3).
func Optimize(g *ir.Graph, opts Options) (*Result, error) {
	res := &Result{Graph: g}
	apply := func(name string, fn func() (bool, error)) error {
		ok, err := fn()
		if err != nil {
			return err
		}
		if ok {
			res.Applied = append(res.Applied, name)
		}
		return nil
	}

	// 1. Cross-IR information passing.
	if opts.PredicateModelPruning {
		if err := apply("predicate-based-model-pruning", func() (bool, error) {
			return rulePredicateModelPruning(g, opts.UseDataStatistics)
		}); err != nil {
			return nil, err
		}
	}
	if opts.ModelProjectionPushdown {
		if err := apply("model-projection-pushdown", func() (bool, error) {
			return ruleModelProjectionPushdown(g)
		}); err != nil {
			return nil, err
		}
	}

	// 2. Operator transformations. Splitting first (it needs the raw
	// tree); then inlining; NN translation only when inlining didn't fire
	// (an inlined model has already left the MLD category).
	if opts.ModelQuerySplitting {
		if err := apply("model-query-splitting", func() (bool, error) {
			return ruleModelQuerySplitting(g)
		}); err != nil {
			return nil, err
		}
	}
	inlined := false
	if opts.ModelInlining {
		if err := apply("model-inlining", func() (bool, error) {
			ok, err := ruleModelInlining(g)
			inlined = ok
			return ok, err
		}); err != nil {
			return nil, err
		}
	}
	if opts.NNTranslation && !inlined {
		if err := apply("nn-translation", func() (bool, error) {
			return ruleNNTranslation(g, opts.UseGPU)
		}); err != nil {
			return nil, err
		}
	}

	// 3. Standard relational optimizations over the source plan (the
	// paper's §2 "standard DB optimizations": pushdown + join elimination
	// enabled by the narrowed model inputs).
	if opts.Relational && opts.RelOpt != nil {
		if err := apply("relational-optimizations", func() (bool, error) {
			return optimizeSourcePlan(g, opts.RelOpt)
		}); err != nil {
			return nil, err
		}
	}

	// 4. Engine placement (§4.3): RA nodes to the DB engine, MLD/LA nodes
	// to the ML runtime.
	placeEngines(g)
	return res, nil
}

// optimizeSourcePlan runs the relational optimizer over the source plan
// with the model's (possibly narrowed) input columns as the required set.
func optimizeSourcePlan(g *ir.Graph, ro *relopt.Optimizer) (bool, error) {
	src, ok := g.Source().(*ir.RelNode)
	if !ok {
		return false, nil
	}
	inputs := modelInputColumns(g)
	saved := ro.ModelInputs
	if inputs != nil {
		ro.ModelInputs = func(string) ([]string, error) { return inputs, nil }
	}
	defer func() { ro.ModelInputs = saved }()

	before := plan.Explain(src.Plan)
	// Wrap with a synthetic Predict so pruning keeps the model inputs; we
	// instead call prune directly via a projection-preserving trick: the
	// optimizer prunes to the root schema, so temporarily cap the plan
	// with a projection of needed columns when inputs are known.
	needed := inputs
	if needed == nil {
		// No ML stage (e.g. after model inlining): the columns the middle
		// and sink RA fragments reference are what the source must keep.
		needed = middleReferencedColumns(g)
	}
	if needed == nil {
		for _, c := range src.Plan.Schema().Columns {
			needed = append(needed, c.Name)
		}
	} else {
		// prediction consumers above may reference extra columns (e.g.
		// SELECT d.id): keep every column the sink references too.
		needed = append(needed, sinkReferencedColumns(g)...)
	}
	opt, err := ro.OptimizeFor(src.Plan, needed)
	if err != nil {
		return false, err
	}
	src.Plan = opt
	return plan.Explain(opt) != before, nil
}

// modelInputColumns returns the columns the ML stage consumes, or nil when
// there is no ML stage.
func modelInputColumns(g *ir.Graph) []string {
	for _, n := range g.Chain() {
		switch x := n.(type) {
		case *ir.ModelNode:
			return x.InputCols
		case *ir.LANode:
			return x.InputCols
		case *ir.SplitNode:
			cols := map[string]bool{x.CondCol: true}
			var out []string
			for c := range cols {
				out = append(out, c)
			}
			if m, ok := x.Left.(*ir.ModelNode); ok {
				out = append(out, m.InputCols...)
			}
			if m, ok := x.Right.(*ir.ModelNode); ok {
				out = append(out, m.InputCols...)
			}
			return out
		}
	}
	return nil
}

// middleReferencedColumns collects the columns referenced by RA fragments
// between source and root (e.g. an inlined CASE projection). It returns
// nil when there are no such fragments.
func middleReferencedColumns(g *ir.Graph) []string {
	src := g.Source()
	seen := make(map[string]bool)
	found := false
	for _, n := range g.Chain() {
		rn, ok := n.(*ir.RelNode)
		if !ok || rn == src || rn.In == nil {
			continue
		}
		found = true
		walkPlan(rn.Plan, func(p plan.Node) {
			switch x := p.(type) {
			case *plan.Filter:
				for _, c := range expr.Columns(x.Pred) {
					seen[c] = true
				}
			case *plan.Project:
				for _, e := range x.Exprs {
					for _, c := range expr.Columns(e) {
						seen[c] = true
					}
				}
			}
		})
	}
	if !found {
		return nil
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	return out
}

// sinkReferencedColumns collects the source columns the sink plan touches.
func sinkReferencedColumns(g *ir.Graph) []string {
	sink := g.SinkRel()
	if sink == nil {
		return nil
	}
	seen := make(map[string]bool)
	walkPlan(sink.Plan, func(n plan.Node) {
		switch x := n.(type) {
		case *plan.Filter:
			for _, c := range expr.Columns(x.Pred) {
				seen[c] = true
			}
		case *plan.Project:
			for _, e := range x.Exprs {
				for _, c := range expr.Columns(e) {
					seen[c] = true
				}
			}
		case *plan.Sort:
			for _, k := range x.Keys {
				seen[k.Col] = true
			}
		case *plan.Aggregate:
			for _, gc := range x.GroupBy {
				seen[gc] = true
			}
			for _, a := range x.Aggs {
				if a.Arg != nil {
					for _, c := range expr.Columns(a.Arg) {
						seen[c] = true
					}
				}
			}
		}
	})
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	return out
}

func placeEngines(g *ir.Graph) {
	for _, n := range g.Chain() {
		switch x := n.(type) {
		case *ir.RelNode:
			x.Engine = ir.EngineDB
		case *ir.TransformNode:
			x.Engine = ir.EngineML
		case *ir.ModelNode:
			x.Engine = ir.EngineML
		case *ir.LANode:
			x.Engine = ir.EngineML
		case *ir.UDFNode:
			x.Engine = ir.EngineML
		}
	}
}
