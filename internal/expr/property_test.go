package expr

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"raven/internal/types"
)

// randExpr generates a random boolean-or-numeric expression tree over
// columns {a FLOAT, b INT, ok BOOL}.
func randExpr(rng *rand.Rand, depth int, wantBool bool) Expr {
	if depth == 0 {
		if wantBool {
			switch rng.Intn(3) {
			case 0:
				return BoolLit(rng.Intn(2) == 0)
			case 1:
				return &Column{Name: "ok"}
			default:
				return NewBinary(OpGt, &Column{Name: "a"}, FloatLit(rng.NormFloat64()))
			}
		}
		switch rng.Intn(4) {
		case 0:
			return FloatLit(rng.NormFloat64() * 10)
		case 1:
			return IntLit(int64(rng.Intn(20) - 10))
		case 2:
			return &Column{Name: "a"}
		default:
			return &Column{Name: "b"}
		}
	}
	if wantBool {
		switch rng.Intn(4) {
		case 0:
			return NewBinary(OpAnd, randExpr(rng, depth-1, true), randExpr(rng, depth-1, true))
		case 1:
			return NewBinary(OpOr, randExpr(rng, depth-1, true), randExpr(rng, depth-1, true))
		case 2:
			return &Not{E: randExpr(rng, depth-1, true)}
		default:
			ops := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
			return NewBinary(ops[rng.Intn(len(ops))], randExpr(rng, depth-1, false), randExpr(rng, depth-1, false))
		}
	}
	switch rng.Intn(4) {
	case 0:
		return NewBinary(OpAdd, randExpr(rng, depth-1, false), randExpr(rng, depth-1, false))
	case 1:
		return NewBinary(OpSub, randExpr(rng, depth-1, false), randExpr(rng, depth-1, false))
	case 2:
		return NewBinary(OpMul, randExpr(rng, depth-1, false), randExpr(rng, depth-1, false))
	default:
		return &Case{
			Whens: []When{{Cond: randExpr(rng, depth-1, true), Then: randExpr(rng, depth-1, false)}},
			Else:  randExpr(rng, depth-1, false),
		}
	}
}

func propBatch(rng *rand.Rand, n int) *types.Batch {
	s := types.NewSchema(
		types.Column{Name: "a", Type: types.Float},
		types.Column{Name: "b", Type: types.Int},
		types.Column{Name: "ok", Type: types.Bool},
	)
	b := types.NewBatch(s)
	for i := 0; i < n; i++ {
		_ = b.AppendRow(rng.NormFloat64()*5, int64(rng.Intn(10)-5), rng.Intn(2) == 0)
	}
	return b
}

// Property: Simplify preserves evaluation semantics on every row. Numeric
// comparisons are exact because folding uses the same float64 arithmetic.
func TestSimplifyPreservesSemantics(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := propBatch(rng, 64)
		e := randExpr(rng, 4, rng.Intn(2) == 0)
		s := Simplify(e)
		v1, err1 := e.Eval(b)
		v2, err2 := s.Eval(b)
		if (err1 == nil) != (err2 == nil) {
			// Simplification may fold away a subexpression whose sibling
			// errors; our generator produces only well-typed trees, so
			// errors must agree.
			return false
		}
		if err1 != nil {
			return true
		}
		if v1.Type != v2.Type {
			// int+int folding may widen via literals; compare as floats
			for i := 0; i < b.Len(); i++ {
				if v1.AsFloat(i) != v2.AsFloat(i) {
					return false
				}
			}
			return true
		}
		for i := 0; i < b.Len(); i++ {
			switch v1.Type {
			case types.Bool:
				if v1.BoolAt(i) != v2.BoolAt(i) {
					return false
				}
			case types.Int:
				if v1.IntAt(i) != v2.IntAt(i) {
					return false
				}
			default:
				if v1.AsFloat(i) != v2.AsFloat(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// refEvalBinary is the boxed reference semantics the typed kernels must
// reproduce byte-for-byte: one row at a time through the broadcast-aware
// accessors, with the engine's documented coercions — AND/OR over bools,
// comparisons via a three-way compare built from < and > (so NaN compares
// "equal" to everything, including itself), INT arithmetic staying INT
// except division, and mixed operand kinds coercing to float per row.
func refEvalBinary(op BinOp, lv, rv *types.Vector, n int) (*types.Vector, error) {
	cmp3 := func(lt, gt bool) int {
		switch {
		case lt:
			return -1
		case gt:
			return 1
		default:
			return 0
		}
	}
	cmpOut := func(op BinOp, c int) bool {
		switch op {
		case OpEq:
			return c == 0
		case OpNe:
			return c != 0
		case OpLt:
			return c < 0
		case OpLe:
			return c <= 0
		case OpGt:
			return c > 0
		default:
			return c >= 0
		}
	}
	switch {
	case op == OpAnd || op == OpOr:
		out := types.NewVector(types.Bool, n)
		for i := 0; i < n; i++ {
			if op == OpAnd {
				out.Bools[i] = lv.BoolAt(i) && rv.BoolAt(i)
			} else {
				out.Bools[i] = lv.BoolAt(i) || rv.BoolAt(i)
			}
		}
		return out, nil
	case op.IsComparison():
		out := types.NewVector(types.Bool, n)
		for i := 0; i < n; i++ {
			var c int
			switch {
			case lv.Type == types.String && rv.Type == types.String:
				c = strings.Compare(lv.StringAt(i), rv.StringAt(i))
			case lv.Type == types.Int && rv.Type == types.Int:
				a, b := lv.IntAt(i), rv.IntAt(i)
				c = cmp3(a < b, a > b)
			default:
				a, b := lv.AsFloat(i), rv.AsFloat(i)
				c = cmp3(a < b, a > b)
			}
			out.Bools[i] = cmpOut(op, c)
		}
		return out, nil
	default:
		if lv.Type == types.Int && rv.Type == types.Int && op != OpDiv {
			out := types.NewVector(types.Int, n)
			for i := 0; i < n; i++ {
				a, b := lv.IntAt(i), rv.IntAt(i)
				switch op {
				case OpAdd:
					out.Ints[i] = a + b
				case OpSub:
					out.Ints[i] = a - b
				case OpMul:
					out.Ints[i] = a * b
				}
			}
			return out, nil
		}
		out := types.NewVector(types.Float, n)
		for i := 0; i < n; i++ {
			a, b := lv.AsFloat(i), rv.AsFloat(i)
			switch op {
			case OpAdd:
				out.Floats[i] = a + b
			case OpSub:
				out.Floats[i] = a - b
			case OpMul:
				out.Floats[i] = a * b
			case OpDiv:
				out.Floats[i] = a / b
			}
		}
		return out, nil
	}
}

// kernelBatch builds a batch with two columns of every type. Float
// columns include NaN, ±Inf and -0 so the comparison semantics are
// pinned; string columns include empty strings and shared prefixes.
func kernelBatch(rng *rand.Rand, n int) *types.Batch {
	s := types.NewSchema(
		types.Column{Name: "f1", Type: types.Float},
		types.Column{Name: "f2", Type: types.Float},
		types.Column{Name: "i1", Type: types.Int},
		types.Column{Name: "i2", Type: types.Int},
		types.Column{Name: "b1", Type: types.Bool},
		types.Column{Name: "b2", Type: types.Bool},
		types.Column{Name: "s1", Type: types.String},
		types.Column{Name: "s2", Type: types.String},
	)
	b := types.NewBatch(s)
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0}
	words := []string{"", "a", "ab", "abc", "b", "zz"}
	for i := 0; i < n; i++ {
		f1 := rng.NormFloat64() * 3
		f2 := rng.NormFloat64() * 3
		if rng.Intn(8) == 0 {
			f1 = specials[rng.Intn(len(specials))]
		}
		if rng.Intn(8) == 0 {
			f2 = specials[rng.Intn(len(specials))]
		}
		_ = b.AppendRow(
			f1, f2,
			int64(rng.Intn(9)-4), int64(rng.Intn(9)-4),
			rng.Intn(2) == 0, rng.Intn(2) == 0,
			words[rng.Intn(len(words))], words[rng.Intn(len(words))],
		)
	}
	return b
}

// applyNulls marks rows null per pattern: "none", "sparse" (every 7th
// row, plus the 63/64/65 word-boundary positions when present) or "all".
// The kernels deliberately ignore null masks — the legacy boxed semantics
// — so a null row must still compute from its raw stored value.
func applyNulls(b *types.Batch, pattern string) {
	n := b.Len()
	mark := func(i int) {
		for _, v := range b.Vecs {
			v.SetNull(i)
		}
	}
	switch pattern {
	case "sparse":
		for i := 0; i < n; i += 7 {
			mark(i)
		}
		for _, i := range []int{63, 64, 65} {
			if i < n {
				mark(i)
			}
		}
	case "all":
		for i := 0; i < n; i++ {
			mark(i)
		}
	}
}

// TestKernelParityWithBoxedReference drives every binary kernel — both
// columns, column vs broadcast literal, literal vs column, literal vs
// literal, and mixed numeric types — across batch sizes spanning the
// null-bitmap word boundaries and NULL densities, and demands the typed
// result be byte-identical (float bits included) to the boxed per-row
// reference.
func TestKernelParityWithBoxedReference(t *testing.T) {
	cmpOps := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	arithOps := []BinOp{OpAdd, OpSub, OpMul, OpDiv}
	boolOps := []BinOp{OpAnd, OpOr}

	shapes := []struct {
		name string
		ops  []BinOp
		l, r Expr
	}{
		{"float-float", append(cmpOps, arithOps...), &Column{Name: "f1"}, &Column{Name: "f2"}},
		{"int-int", append(cmpOps, arithOps...), &Column{Name: "i1"}, &Column{Name: "i2"}},
		{"mixed-float-int", append(cmpOps, arithOps...), &Column{Name: "f1"}, &Column{Name: "i1"}},
		{"float-lit", append(cmpOps, arithOps...), &Column{Name: "f1"}, FloatLit(0.25)},
		{"lit-int", append(cmpOps, arithOps...), IntLit(2), &Column{Name: "i2"}},
		{"lit-lit", append(cmpOps, arithOps...), FloatLit(1.5), IntLit(-2)},
		{"bool-bool", boolOps, &Column{Name: "b1"}, &Column{Name: "b2"}},
		{"bool-lit", boolOps, &Column{Name: "b1"}, BoolLit(true)},
		{"string-string", cmpOps, &Column{Name: "s1"}, &Column{Name: "s2"}},
		{"string-lit", cmpOps, &Column{Name: "s1"}, StringLit("ab")},
	}
	sizes := []int{1, 63, 64, 65, 101, 4096}
	patterns := []string{"none", "sparse", "all"}

	for _, size := range sizes {
		for _, pattern := range patterns {
			rng := rand.New(rand.NewSource(int64(size)*31 + int64(len(pattern))))
			b := kernelBatch(rng, size)
			applyNulls(b, pattern)
			for _, sh := range shapes {
				for _, op := range sh.ops {
					e := NewBinary(op, sh.l, sh.r)
					got, err := e.Eval(b)
					if err != nil {
						t.Fatalf("n=%d nulls=%s %s %s: %v", size, pattern, sh.name, e, err)
					}
					lv, _ := sh.l.Eval(b)
					rv, _ := sh.r.Eval(b)
					want, err := refEvalBinary(op, lv, rv, size)
					if err != nil {
						t.Fatalf("reference n=%d %s %s: %v", size, sh.name, e, err)
					}
					if got.Len() != size {
						t.Fatalf("n=%d nulls=%s %s %s: result length %d", size, pattern, sh.name, e, got.Len())
					}
					if got.Type != want.Type {
						t.Fatalf("n=%d nulls=%s %s %s: result type %v, reference %v", size, pattern, sh.name, e, got.Type, want.Type)
					}
					for i := 0; i < size; i++ {
						var same bool
						switch want.Type {
						case types.Bool:
							same = got.BoolAt(i) == want.Bools[i]
						case types.Int:
							same = got.IntAt(i) == want.Ints[i]
						default:
							same = math.Float64bits(got.FloatAt(i)) == math.Float64bits(want.Floats[i])
						}
						if !same {
							t.Fatalf("n=%d nulls=%s %s %s: row %d: kernel %v, reference %v",
								size, pattern, sh.name, e, i, got.Value(i), want.Value(i))
						}
					}
				}
			}
		}
	}
}

// TestKernelParityRandomTrees replays the boxed reference against whole
// random expression trees (the shapes model inlining produces), so kernel
// composition — pooled intermediates, broadcast propagation, CASE
// scatter — is covered too, not just single operators.
func TestKernelParityRandomTrees(t *testing.T) {
	var refEval func(e Expr, b *types.Batch) (*types.Vector, error)
	refEval = func(e Expr, b *types.Batch) (*types.Vector, error) {
		switch x := e.(type) {
		case *Binary:
			lv, err := refEval(x.L, b)
			if err != nil {
				return nil, err
			}
			rv, err := refEval(x.R, b)
			if err != nil {
				return nil, err
			}
			return refEvalBinary(x.Op, lv, rv, b.Len())
		case *Not:
			v, err := refEval(x.E, b)
			if err != nil {
				return nil, err
			}
			out := types.NewVector(types.Bool, b.Len())
			for i := range out.Bools {
				out.Bools[i] = !v.BoolAt(i)
			}
			return out, nil
		case *Case:
			dt, err := x.Type(b.Schema)
			if err != nil {
				return nil, err
			}
			conds := make([]*types.Vector, len(x.Whens))
			thens := make([]*types.Vector, len(x.Whens))
			for k, w := range x.Whens {
				if conds[k], err = refEval(w.Cond, b); err != nil {
					return nil, err
				}
				if thens[k], err = refEval(w.Then, b); err != nil {
					return nil, err
				}
			}
			elseV, err := refEval(x.Else, b)
			if err != nil {
				return nil, err
			}
			out := types.NewVector(dt, b.Len())
			for i := 0; i < b.Len(); i++ {
				av := elseV
				for k := range x.Whens {
					if conds[k].BoolAt(i) {
						av = thens[k]
						break
					}
				}
				switch dt {
				case types.Float:
					out.Floats[i] = av.AsFloat(i)
				case types.Int:
					out.Ints[i] = av.IntAt(i)
				case types.Bool:
					out.Bools[i] = av.BoolAt(i)
				default:
					out.Strings[i] = av.StringAt(i)
				}
			}
			return out, nil
		default:
			return e.Eval(b)
		}
	}

	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := []int{1, 64, 65, 200}[rng.Intn(4)]
		b := propBatch(rng, n)
		e := randExpr(rng, 4, rng.Intn(2) == 0)
		got, err1 := e.Eval(b)
		want, err2 := refEval(e, b)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if got.Type != want.Type {
			return false
		}
		for i := 0; i < n; i++ {
			var same bool
			switch want.Type {
			case types.Bool:
				same = got.BoolAt(i) == want.Bools[i]
			case types.Int:
				same = got.IntAt(i) == want.Ints[i]
			default:
				same = math.Float64bits(got.FloatAt(i)) == math.Float64bits(want.Floats[i])
			}
			if !same {
				fmt.Printf("mismatch seed=%d n=%d row=%d expr=%s: kernel %v reference %v\n",
					seed, n, i, e, got.Value(i), want.Value(i))
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: DeriveRanges never produces a range excluding a row that
// satisfies the predicate (soundness of predicate→interval derivation).
func TestDeriveRangesSound(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := propBatch(rng, 128)
		// conjunctions of comparisons only (the shape DeriveRanges reads)
		var cs []Expr
		for i := 0; i < 1+rng.Intn(3); i++ {
			ops := []BinOp{OpEq, OpLt, OpLe, OpGt, OpGe}
			col := []string{"a", "b"}[rng.Intn(2)]
			cs = append(cs, NewBinary(ops[rng.Intn(len(ops))], &Column{Name: col}, FloatLit(float64(rng.Intn(8)-4))))
		}
		pred := And(cs)
		ranges := DeriveRanges(pred)
		mask, err := pred.Eval(b)
		if err != nil {
			return false
		}
		for i := 0; i < b.Len(); i++ {
			if !mask.BoolAt(i) {
				continue
			}
			for col, r := range ranges {
				v := b.Col(col).AsFloat(i)
				if v < r.Lo || v > r.Hi {
					return false // satisfied row outside derived range: unsound
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
