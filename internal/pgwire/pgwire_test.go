package pgwire

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"raven"
	"raven/internal/server/stmtreg"
)

// newTestServer boots an engine + pg front end on a random port.
func newTestServer(t *testing.T, reg *stmtreg.Registry, opts ...raven.Option) (*raven.DB, *Server, string) {
	t.Helper()
	db, err := raven.Open(opts...)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := New(db, reg, Options{})
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != ErrServerClosed {
			t.Errorf("serve returned %v, want ErrServerClosed", err)
		}
		db.Close()
	})
	return db, s, ln.Addr().String()
}

func seedNums(t *testing.T, db *raven.DB) {
	t.Helper()
	err := db.ExecContext(context.Background(), `
		CREATE TABLE nums (a INT PRIMARY KEY, b FLOAT);
		INSERT INTO nums VALUES (1, 1.5), (2, 2.5), (3, 3.5), (4, 4.5);`)
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
}

func dial(t *testing.T, addr string, o DialOptions) *Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if o.User == "" {
		o.User = "tester"
	}
	c, err := DialClient(ctx, addr, o)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSimpleQuery(t *testing.T) {
	db, _, addr := newTestServer(t, nil)
	seedNums(t, db)
	c := dial(t, addr, DialOptions{})

	// Startup handshake delivered the session basics.
	if c.BackendPID == 0 {
		t.Fatal("no BackendKeyData pid")
	}
	if c.Params["server_encoding"] != "UTF8" {
		t.Fatalf("parameter statuses: %v", c.Params)
	}

	// DDL script: per-statement tags collapse to the script's last one.
	res, err := c.SimpleQuery(`CREATE TABLE t2 (x INT PRIMARY KEY); INSERT INTO t2 VALUES (1), (2)`)
	if err != nil {
		t.Fatalf("ddl: %v", err)
	}
	if len(res) != 1 || res[0].Tag != "INSERT 0 2" {
		t.Fatalf("ddl tags: %+v", res)
	}

	// SELECT: typed columns, decoded rows, SELECT n tag.
	res, err = c.SimpleQuery(`SELECT a, b FROM nums WHERE b > 2.0`)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	r := res[0]
	if r.Tag != "SELECT 3" || len(r.Rows) != 3 {
		t.Fatalf("select: tag %q rows %v", r.Tag, r.Rows)
	}
	if r.Cols[0].OID != oidInt8 || r.Cols[1].OID != oidFloat8 {
		t.Fatalf("select: col oids %+v", r.Cols)
	}
	if r.Rows[0][0] != int64(2) || r.Rows[0][1] != 2.5 {
		t.Fatalf("select: first row %v", r.Rows[0])
	}

	// Empty query → EmptyQueryResponse, connection stays in step.
	if res, err = c.SimpleQuery("  "); err != nil || len(res) != 1 || res[0].Tag != "" {
		t.Fatalf("empty query: %v %v", res, err)
	}

	// Session-management shims ack with conventional tags.
	for script, tag := range map[string]string{
		`SET search_path = public`: "SET",
		`BEGIN`:                    "BEGIN",
		`COMMIT`:                   "COMMIT",
		`ROLLBACK`:                 "ROLLBACK",
	} {
		res, err := c.SimpleQuery(script)
		if err != nil || len(res) != 1 || res[0].Tag != tag {
			t.Fatalf("shim %q: %+v %v", script, res, err)
		}
	}

	// A parse error maps to SQLSTATE 42601 and the connection survives.
	_, err = c.SimpleQuery(`SELEC a FROM nums`)
	var pgErr *PgError
	if !errors.As(err, &pgErr) || pgErr.Code != "42601" {
		t.Fatalf("syntax error: want 42601, got %v", err)
	}
	if _, err := c.SimpleQuery(`SELECT a FROM nums`); err != nil {
		t.Fatalf("query after error: %v", err)
	}
}

func TestExtendedProtocolSequence(t *testing.T) {
	db, _, addr := newTestServer(t, nil)
	seedNums(t, db)
	c := dial(t, addr, DialOptions{})

	// Parse a named statement, bind with $1, describe the statement,
	// execute, sync — asserting the exact backend message sequence.
	c.SendParse("getnums", `SELECT a, b FROM nums WHERE a > $1`)
	arg := "2"
	c.SendBind("", "getnums", []*string{&arg})
	c.SendDescribe('S', "getnums")
	c.SendExecute("", 0)
	c.SendSync()

	want := []byte{msgParseComplete, msgBindComplete, msgParamDescription, msgRowDescription,
		msgDataRow, msgDataRow, msgCommandComplete, msgReadyForQuery}
	for i, w := range want {
		typ, payload, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if typ != w {
			t.Fatalf("message %d: got %q want %q", i, typ, w)
		}
		if typ == msgCommandComplete {
			m := &msgReader{b: payload}
			tag, _ := m.cstring()
			if tag != "SELECT 2" {
				t.Fatalf("tag %q, want SELECT 2", tag)
			}
		}
	}

	// The named statement persists across Syncs: QueryExtended over a new
	// unnamed statement still works, and the named one re-executes.
	res, err := c.QueryExtended(`SELECT b FROM nums WHERE a = $1`, "3")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != 3.5 {
		t.Fatalf("unnamed extended: %+v %v", res, err)
	}

	// Close the named statement: CloseComplete, then binding it fails.
	c.SendClose('S', "getnums")
	c.SendSync()
	if typ, _, err := c.Recv(); err != nil || typ != msgCloseComplete {
		t.Fatalf("close: %q %v", typ, err)
	}
	if typ, _, _ := c.Recv(); typ != msgReadyForQuery {
		t.Fatal("no RFQ after close")
	}
	c.SendBind("", "getnums", []*string{&arg})
	c.SendSync()
	typ, payload, err := c.Recv()
	if err != nil || typ != msgErrorResponse {
		t.Fatalf("bind closed stmt: %q %v", typ, err)
	}
	if e := parsePgError(payload); e.Code != "26000" {
		t.Fatalf("bind closed stmt: code %q, want 26000", e.Code)
	}
	if typ, _, _ := c.Recv(); typ != msgReadyForQuery {
		t.Fatal("no RFQ after 26000")
	}
}

func TestExtendedProtocolErrors(t *testing.T) {
	db, _, addr := newTestServer(t, nil)
	seedNums(t, db)
	c := dial(t, addr, DialOptions{})

	// Wrong arity: Bind supplies 0 params for a 1-param statement →
	// 08P01, and the pipelined Execute is skipped until Sync.
	c.SendParse("", `SELECT a FROM nums WHERE a > $1`)
	c.SendBind("", "", nil)
	c.SendExecute("", 0)
	c.SendSync()
	if typ, _, err := c.Recv(); err != nil || typ != msgParseComplete {
		t.Fatalf("parse: %q %v", typ, err)
	}
	typ, payload, err := c.Recv()
	if err != nil || typ != msgErrorResponse {
		t.Fatalf("bind: %q %v", typ, err)
	}
	if e := parsePgError(payload); e.Code != "08P01" || !strings.Contains(e.Message, "requires 1") {
		t.Fatalf("arity error: %+v", e)
	}
	// Execute was skipped: the next message is already ReadyForQuery.
	if typ, _, err := c.Recv(); err != nil || typ != msgReadyForQuery {
		t.Fatalf("after arity error: %q %v (Execute must be skipped)", typ, err)
	}

	// Unknown portal → 34000.
	c.SendExecute("ghost", 0)
	c.SendSync()
	typ, payload, _ = c.Recv()
	if typ != msgErrorResponse {
		t.Fatalf("execute ghost: %q", typ)
	}
	if e := parsePgError(payload); e.Code != "34000" {
		t.Fatalf("execute ghost: code %q, want 34000", e.Code)
	}
	c.Recv() // RFQ

	// Binary result format refused with 0A000.
	c.SendParse("", `SELECT a FROM nums`)
	c.buf.start(msgBind)
	c.buf.cstring("")
	c.buf.cstring("")
	c.buf.int16(0) // no param formats
	c.buf.int16(0) // no params
	c.buf.int16(1) // one result format code...
	c.buf.int16(1) // ...binary
	c.buf.finish(c.w)
	c.SendSync()
	c.Recv() // ParseComplete
	typ, payload, _ = c.Recv()
	if e := parsePgError(payload); typ != msgErrorResponse || e.Code != "0A000" {
		t.Fatalf("binary format: %q %+v", typ, e)
	}
	c.Recv() // RFQ

	// The connection is fully recovered.
	if res, err := c.QueryExtended(`SELECT a FROM nums WHERE a = $1`, "1"); err != nil || len(res.Rows) != 1 {
		t.Fatalf("after recovery: %+v %v", res, err)
	}
}

func TestMalformedBindCounts(t *testing.T) {
	db, _, addr := newTestServer(t, nil)
	seedNums(t, db)
	c := dial(t, addr, DialOptions{})

	// A Bind frame whose count bytes read back as -1 (0xFFFF) must be
	// refused as a protocol error, not crash the server in make().
	c.SendParse("", `SELECT a FROM nums`)
	c.buf.start(msgBind)
	c.buf.cstring("") // portal
	c.buf.cstring("") // statement
	c.buf.int16(-1)   // parameter-format count 0xFFFF
	c.buf.finish(c.w)
	c.SendSync()
	if typ, _, err := c.Recv(); err != nil || typ != msgParseComplete {
		t.Fatalf("parse: %q %v", typ, err)
	}
	typ, payload, err := c.Recv()
	if err != nil || typ != msgErrorResponse {
		t.Fatalf("bind: %q %v", typ, err)
	}
	if e := parsePgError(payload); e.Code != "08P01" {
		t.Fatalf("negative format count: code %q, want 08P01", e.Code)
	}
	if typ, _, err := c.Recv(); err != nil || typ != msgReadyForQuery {
		t.Fatalf("after error: %q %v", typ, err)
	}

	// Same for the bound-value count.
	c.buf.start(msgBind)
	c.buf.cstring("")
	c.buf.cstring("")
	c.buf.int16(0)  // no param formats
	c.buf.int16(-1) // value count 0xFFFF
	c.buf.finish(c.w)
	c.SendSync()
	typ, payload, _ = c.Recv()
	if e := parsePgError(payload); typ != msgErrorResponse || e.Code != "08P01" {
		t.Fatalf("negative value count: %q %+v", typ, e)
	}
	c.Recv() // RFQ

	// The connection (and server) survived and still works.
	if res, err := c.QueryExtended(`SELECT a FROM nums WHERE a = $1`, "2"); err != nil || len(res.Rows) != 1 {
		t.Fatalf("after recovery: %+v %v", res, err)
	}
}

func TestSessionObjectLimits(t *testing.T) {
	db, _, addr := newTestServer(t, nil)
	seedNums(t, db)
	c := dial(t, addr, DialOptions{})

	// Fill the statement namespace with cheap local (shim) statements,
	// pipelined; the first Parse past the cap is refused with 53300.
	for i := 0; i < maxSessionStmts; i++ {
		c.SendParse("s"+strconv.Itoa(i), "SET app=x")
	}
	c.SendParse("straw", "SET app=x")
	c.SendSync()
	for i := 0; i < maxSessionStmts; i++ {
		if typ, _, err := c.Recv(); err != nil || typ != msgParseComplete {
			t.Fatalf("parse %d: %q %v", i, typ, err)
		}
	}
	typ, payload, err := c.Recv()
	if err != nil || typ != msgErrorResponse {
		t.Fatalf("over-limit parse: %q %v", typ, err)
	}
	if e := parsePgError(payload); e.Code != "53300" {
		t.Fatalf("stmt limit: code %q, want 53300", e.Code)
	}
	c.Recv() // RFQ

	// Overwriting an existing name is replacement, not growth — allowed.
	c.SendParse("s0", "SET app=y")
	c.SendSync()
	if typ, _, err := c.Recv(); err != nil || typ != msgParseComplete {
		t.Fatalf("overwrite parse at cap: %q %v", typ, err)
	}
	c.Recv() // RFQ

	// Portals have the same cap.
	for i := 0; i < maxSessionPortals; i++ {
		c.SendBind("p"+strconv.Itoa(i), "s0", nil)
	}
	c.SendBind("pstraw", "s0", nil)
	c.SendSync()
	for i := 0; i < maxSessionPortals; i++ {
		if typ, _, err := c.Recv(); err != nil || typ != msgBindComplete {
			t.Fatalf("bind %d: %q %v", i, typ, err)
		}
	}
	typ, payload, _ = c.Recv()
	if e := parsePgError(payload); typ != msgErrorResponse || e.Code != "53300" {
		t.Fatalf("portal limit: %q %+v", typ, e)
	}
	c.Recv() // RFQ

	// Closing a portal frees a slot.
	c.SendClose('P', "p0")
	c.SendBind("pnew", "s0", nil)
	c.SendSync()
	if typ, _, err := c.Recv(); err != nil || typ != msgCloseComplete {
		t.Fatalf("close portal: %q %v", typ, err)
	}
	if typ, _, err := c.Recv(); err != nil || typ != msgBindComplete {
		t.Fatalf("bind after close: %q %v", typ, err)
	}
	c.Recv() // RFQ
}

func TestPreparedStatementRegistrySharing(t *testing.T) {
	reg := stmtreg.New(0)
	db, _, addr := newTestServer(t, reg)
	seedNums(t, db)
	c := dial(t, addr, DialOptions{})

	c.SendParse("keep", `SELECT a FROM nums WHERE a > $1`)
	c.SendSync()
	if typ, _, err := c.Recv(); err != nil || typ != msgParseComplete {
		t.Fatalf("parse: %q %v", typ, err)
	}
	c.Recv() // RFQ
	if reg.Len() != 1 {
		t.Fatalf("registry: %d entries, want 1 (pg statements share the registry)", reg.Len())
	}

	// Closing the connection drops its statements (ownership cleanup).
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("registry still has %d entries after connection close", reg.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAdmissionRejectionsAsSQLStates(t *testing.T) {
	// One admission slot, zero queue: a held slot makes the next query an
	// immediate ErrQueueFull → SQLSTATE 53300 over the wire.
	db, _, addr := newTestServer(t, nil,
		raven.WithMaxConcurrentQueries(1),
		raven.WithSchedulerQueue(0, 0),
	)
	seedNums(t, db)

	held, err := db.QueryContextWithOptions(context.Background(), `SELECT a FROM nums`, raven.DefaultQueryOptions())
	if err != nil {
		t.Fatalf("hold slot: %v", err)
	}
	defer held.Close()

	c := dial(t, addr, DialOptions{})
	_, err = c.SimpleQuery(`SELECT a FROM nums`)
	var pgErr *PgError
	if !errors.As(err, &pgErr) || pgErr.Code != "53300" {
		t.Fatalf("queue full: want 53300, got %v", err)
	}

	held.Close()
	if _, err := c.SimpleQuery(`SELECT a FROM nums`); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestCancelRequest(t *testing.T) {
	// One slot with a queue: the pg query parks in the admission queue,
	// a CancelRequest from a second connection cancels it, and the error
	// comes back as SQLSTATE 57014.
	db, _, addr := newTestServer(t, nil,
		raven.WithMaxConcurrentQueries(1),
		raven.WithSchedulerQueue(8, 0),
	)
	seedNums(t, db)

	held, err := db.QueryContextWithOptions(context.Background(), `SELECT a FROM nums`, raven.DefaultQueryOptions())
	if err != nil {
		t.Fatalf("hold slot: %v", err)
	}
	defer held.Close()

	c := dial(t, addr, DialOptions{})
	errCh := make(chan error, 1)
	go func() {
		_, err := c.SimpleQuery(`SELECT a FROM nums`)
		errCh <- err
	}()

	// Wait until the query is parked in the scheduler queue, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for db.SchedulerLoad().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never reached the scheduler queue")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Cancel(ctx); err != nil {
		t.Fatalf("cancel request: %v", err)
	}

	select {
	case err := <-errCh:
		var pgErr *PgError
		if !errors.As(err, &pgErr) || pgErr.Code != "57014" {
			t.Fatalf("cancelled query: want 57014, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled query never returned")
	}

	// A wrong secret must be ignored (best-effort, unacknowledged).
	c2 := dial(t, addr, DialOptions{})
	c2.BackendSecret++
	if err := c2.Cancel(ctx); err != nil {
		t.Fatalf("bad-secret cancel: %v", err)
	}
	if _, err := c2.SimpleQuery(`SET x = 1`); err != nil {
		t.Fatalf("conn after bad-secret cancel: %v", err)
	}
}

func TestDrainingRefusal(t *testing.T) {
	db, _, addr := newTestServer(t, nil, raven.WithMaxConcurrentQueries(2))
	seedNums(t, db)
	c := dial(t, addr, DialOptions{})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := db.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	_, err := c.SimpleQuery(`SELECT a FROM nums`)
	var pgErr *PgError
	if !errors.As(err, &pgErr) || pgErr.Code != "57P01" {
		t.Fatalf("draining: want 57P01, got %v", err)
	}
}

func TestStartupOptions(t *testing.T) {
	db, _, addr := newTestServer(t, nil, raven.WithMaxConcurrentQueries(2))
	seedNums(t, db)

	// raven.* session knobs parse; queries bill the database-param tenant.
	c := dial(t, addr, DialOptions{
		User:     "alice",
		Database: "teamA",
		Options:  "-c raven.priority=5 -c raven.dop=2 -c raven.no_cache=on",
	})
	if _, err := c.SimpleQuery(`SELECT a FROM nums`); err != nil {
		t.Fatalf("query: %v", err)
	}
	if st := db.Stats(); st.Scheduler == nil || st.Scheduler.Tenants["teamA"].Admitted == 0 {
		t.Fatalf("tenant teamA not billed: %+v", db.Stats().Scheduler)
	}

	// Default-database names fall back to the user as tenant.
	c2 := dial(t, addr, DialOptions{User: "bob", Database: "raven"})
	if _, err := c2.SimpleQuery(`SELECT a FROM nums`); err != nil {
		t.Fatalf("query: %v", err)
	}
	if db.Stats().Scheduler.Tenants["bob"].Admitted == 0 {
		t.Fatalf("tenant bob not billed: %+v", db.Stats().Scheduler)
	}

	// A bogus raven.* knob fails the connection loudly at startup.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := DialClient(ctx, addr, DialOptions{User: "x", Options: "-c raven.bogus=1"})
	var pgErr *PgError
	if !errors.As(err, &pgErr) || pgErr.Code != "42601" {
		t.Fatalf("bogus option: want 42601 startup error, got %v", err)
	}
}

func TestRewritePlaceholders(t *testing.T) {
	cases := []struct {
		in    string
		out   string
		n     int
		isErr bool
	}{
		{in: `SELECT a FROM t WHERE a > $1 AND b < $2`, out: `SELECT a FROM t WHERE a > @p1 AND b < @p2`, n: 2},
		{in: `SELECT '$1' FROM t WHERE a = $1`, out: `SELECT '$1' FROM t WHERE a = @p1`, n: 1},
		{in: `SELECT 'it''s $2' FROM t`, out: `SELECT 'it''s $2' FROM t`, n: 0},
		{in: `SELECT $2 FROM t`, out: `SELECT @p2 FROM t`, n: 2}, // $2 alone implies 2 params
		{in: `SELECT a FROM t`, out: `SELECT a FROM t`, n: 0},
		{in: `SELECT $0 FROM t`, isErr: true},
		{in: `SELECT "$1" FROM t WHERE a = $1`, out: `SELECT "$1" FROM t WHERE a = @p1`, n: 1},
		{in: `SELECT "a""$2" FROM t`, out: `SELECT "a""$2" FROM t`, n: 0},
		{in: "SELECT a -- $3 comment\nFROM t WHERE a = $1", out: "SELECT a -- $3 comment\nFROM t WHERE a = @p1", n: 1},
		{in: `SELECT a /* $3 */ FROM t WHERE a = $1`, out: `SELECT a /* $3 */ FROM t WHERE a = @p1`, n: 1},
		{in: `SELECT a /* outer /* $9 */ still */ FROM t`, out: `SELECT a /* outer /* $9 */ still */ FROM t`, n: 0},
		{in: `SELECT $$lit $1$$ FROM t WHERE a = $2`, out: `SELECT $$lit $1$$ FROM t WHERE a = @p2`, n: 2},
		{in: `SELECT $tag$body $1 $$ more$tag$ FROM t`, out: `SELECT $tag$body $1 $$ more$tag$ FROM t`, n: 0},
		{in: `SELECT $$unterminated $1`, out: `SELECT $$unterminated $1`, n: 0},
		{in: `SELECT a + $1abc FROM t`, isErr: true}, // placeholder glued to an identifier
	}
	for _, c := range cases {
		out, n, err := rewritePlaceholders(c.in)
		if c.isErr {
			if err == nil {
				t.Errorf("%q: want error", c.in)
			}
			continue
		}
		if err != nil || out != c.out || n != c.n {
			t.Errorf("%q: got (%q, %d, %v), want (%q, %d)", c.in, out, n, err, c.out, c.n)
		}
	}
}

func TestSessionOptionsTenantMapping(t *testing.T) {
	cases := []struct {
		params map[string]string
		tenant string
	}{
		{map[string]string{"user": "alice", "database": "teamA"}, "teamA"},
		{map[string]string{"user": "alice", "database": "raven"}, "alice"},
		{map[string]string{"user": "alice", "database": "postgres"}, "alice"},
		{map[string]string{"user": "alice"}, "alice"},
		{map[string]string{}, "fallback"},
	}
	for _, c := range cases {
		o, err := sessionOptions(c.params, "fallback")
		if err != nil || o.Tenant != c.tenant {
			t.Errorf("%v: tenant %q err %v, want %q", c.params, o.Tenant, err, c.tenant)
		}
	}
	if _, err := sessionOptions(map[string]string{"options": "--raven.priority=abc"}, ""); err == nil {
		t.Error("bad priority: want error")
	}
	if _, err := sessionOptions(map[string]string{"options": "-z oops"}, ""); err == nil {
		t.Error("unsupported options arg: want error")
	}
}

func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	db, err := raven.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	seedNums(t, db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := New(db, nil, Options{})
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		c, err := DialClient(ctx, ln.Addr().String(), DialOptions{User: "leaky"})
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		if _, err := c.QueryExtended(`SELECT a FROM nums WHERE a > $1`, "0"); err != nil {
			t.Fatalf("query: %v", err)
		}
		c.Close()
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done
	db.Close()

	// Connection goroutines unwind asynchronously after the sockets
	// close; poll with a deadline before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
