package ort

import (
	"fmt"

	"raven/internal/tensor"
)

// Optimize runs the graph-level optimizer passes the paper exercises inside
// ONNX Runtime (§4.1 constant folding, plus the housekeeping passes any
// real graph compiler needs) and returns a new graph:
//
//  1. identity elimination
//  2. constant folding (nodes whose inputs are all initializers)
//  3. MatMul+Add → Gemm fusion
//  4. dead-code elimination
//
// Passes run to fixpoint because folding can expose more folding.
func Optimize(g *Graph) (*Graph, error) {
	out := g.Clone()
	for i := 0; i < 16; i++ {
		changed := false
		c, err := eliminateIdentity(out)
		if err != nil {
			return nil, err
		}
		changed = changed || c
		c, err = foldConstants(out)
		if err != nil {
			return nil, err
		}
		changed = changed || c
		c = fuseGemm(out)
		changed = changed || c
		c = eliminateDead(out)
		changed = changed || c
		if !changed {
			return out, nil
		}
	}
	return out, nil
}

// eliminateIdentity rewires consumers of Identity nodes to the identity's
// input. Identities feeding graph outputs are kept (they rename).
func eliminateIdentity(g *Graph) (bool, error) {
	outputs := make(map[string]bool, len(g.Outputs))
	for _, o := range g.Outputs {
		outputs[o] = true
	}
	rename := make(map[string]string)
	var kept []*Node
	for _, n := range g.Nodes {
		if n.Op == "Identity" && !outputs[n.Outputs[0]] {
			src := n.Inputs[0]
			if to, ok := rename[src]; ok {
				src = to
			}
			rename[n.Outputs[0]] = src
			continue
		}
		kept = append(kept, n)
	}
	if len(rename) == 0 {
		return false, nil
	}
	for _, n := range kept {
		for i, in := range n.Inputs {
			if to, ok := rename[in]; ok {
				n.Inputs[i] = to
			}
		}
	}
	g.Nodes = kept
	return true, nil
}

// foldConstants evaluates nodes whose inputs are all initializers and
// replaces them with initializers. This is the ONNX Runtime
// constant-folding pass the paper points at for predicate-derived constant
// propagation (§4.1): once the cross optimizer pins an input column to a
// constant, whole subgraphs collapse here.
func foldConstants(g *Graph) (bool, error) {
	changed := false
	var kept []*Node
	for _, n := range g.Nodes {
		allConst := len(n.Inputs) > 0
		for _, in := range n.Inputs {
			if _, ok := g.Initializers[in]; !ok {
				allConst = false
				break
			}
		}
		if !allConst || !HasKernel(n.Op) {
			kept = append(kept, n)
			continue
		}
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for i, name := range n.Inputs {
			ins[i] = g.Initializers[name]
		}
		outs, err := kernels[n.Op](ins, n.Attrs, 1)
		if err != nil {
			return false, fmt.Errorf("ort: constant folding %s (%s): %w", n.Name, n.Op, err)
		}
		for i, name := range n.Outputs {
			g.Initializers[name] = outs[i]
		}
		changed = true
	}
	g.Nodes = kept
	return changed, nil
}

// fuseGemm rewrites MatMul followed by a bias Add into a single Gemm when
// the MatMul result has exactly one consumer.
func fuseGemm(g *Graph) bool {
	consumers := make(map[string]int)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			consumers[in]++
		}
	}
	for _, o := range g.Outputs {
		consumers[o]++
	}
	producer := make(map[string]*Node)
	for _, n := range g.Nodes {
		for _, out := range n.Outputs {
			producer[out] = n
		}
	}
	changed := false
	removed := make(map[*Node]bool)
	for _, n := range g.Nodes {
		if n.Op != "Add" || removed[n] {
			continue
		}
		var mm *Node
		var biasInput string
		if p := producer[n.Inputs[0]]; p != nil && p.Op == "MatMul" && !removed[p] && consumers[n.Inputs[0]] == 1 {
			mm, biasInput = p, n.Inputs[1]
		} else if p := producer[n.Inputs[1]]; p != nil && p.Op == "MatMul" && !removed[p] && consumers[n.Inputs[1]] == 1 {
			mm, biasInput = p, n.Inputs[0]
		}
		if mm == nil {
			continue
		}
		// Rewrite the Add node into a Gemm in place; drop the MatMul.
		n.Op = "Gemm"
		n.Inputs = []string{mm.Inputs[0], mm.Inputs[1], biasInput}
		n.Attrs = Attrs{"alpha": 1.0, "beta": 1.0}
		removed[mm] = true
		changed = true
	}
	if !changed {
		return false
	}
	var kept []*Node
	for _, n := range g.Nodes {
		if !removed[n] {
			kept = append(kept, n)
		}
	}
	g.Nodes = kept
	return true
}

// eliminateDead removes nodes whose outputs reach no graph output, and
// initializers that no node references.
func eliminateDead(g *Graph) bool {
	needed := make(map[string]bool, len(g.Outputs))
	for _, o := range g.Outputs {
		needed[o] = true
	}
	// Walk nodes backwards; graph is topologically ordered.
	var keep []*Node
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		n := g.Nodes[i]
		used := false
		for _, out := range n.Outputs {
			if needed[out] {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		for _, in := range n.Inputs {
			needed[in] = true
		}
		keep = append(keep, n)
	}
	changed := len(keep) != len(g.Nodes)
	// keep is reversed
	for i, j := 0, len(keep)-1; i < j; i, j = i+1, j-1 {
		keep[i], keep[j] = keep[j], keep[i]
	}
	g.Nodes = keep
	for name := range g.Initializers {
		if !needed[name] {
			delete(g.Initializers, name)
			changed = true
		}
	}
	return changed
}

// PinInput turns a graph input into a constant initializer with the given
// value, then re-optimizes. This is the mechanism behind the paper's
// "the pregnant variable is a constant in our example query and can be
// propagated inside the NN" (§2, compiler optimizations).
func PinInput(g *Graph, input string, value *tensor.Tensor) (*Graph, error) {
	found := false
	out := g.Clone()
	var rest []string
	for _, in := range out.Inputs {
		if in == input {
			found = true
			continue
		}
		rest = append(rest, in)
	}
	if !found {
		return nil, fmt.Errorf("ort: PinInput: %q is not a graph input", input)
	}
	out.Inputs = rest
	out.AddInitializer(input, value)
	return Optimize(out)
}
