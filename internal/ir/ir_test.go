package ir

import (
	"fmt"
	"strings"
	"testing"

	"raven/internal/ml"
	"raven/internal/plan"
	"raven/internal/storage"
	"raven/internal/types"
)

func smallTable(t *testing.T, name string) *storage.Table {
	t.Helper()
	tb := storage.NewTable(name, types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "x", Type: types.Float},
	))
	for i := 0; i < 5; i++ {
		if err := tb.AppendRow(int64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func testPipeline() *ml.Pipeline {
	return &ml.Pipeline{
		Steps:        []ml.Transformer{&ml.StandardScaler{Mean: []float64{0}, Scale: []float64{1}}},
		Final:        &ml.LogisticRegression{W: []float64{1}, B: 0},
		InputColumns: []string{"x"},
	}
}

func resolver(p *ml.Pipeline) PipelineResolver {
	return func(name string) (*ml.Pipeline, error) {
		if name == "m" {
			return p, nil
		}
		return nil, fmt.Errorf("no model %q", name)
	}
}

func TestFromPlanNoPredict(t *testing.T) {
	tb := smallTable(t, "t")
	g, err := FromPlan(plan.NewScan(tb), resolver(testPipeline()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Root.(*RelNode); !ok {
		t.Fatalf("root = %T", g.Root)
	}
	if g.CountCategory(MLD) != 0 {
		t.Error("phantom MLD nodes")
	}
}

func TestFromPlanExpandsPredict(t *testing.T) {
	tb := smallTable(t, "t")
	pr := plan.NewPredict(plan.NewScan(tb), "m", []types.Column{{Name: "score", Type: types.Float}})
	g, err := FromPlan(pr, resolver(testPipeline()))
	if err != nil {
		t.Fatal(err)
	}
	chain := g.Chain()
	// source RelNode, TransformNode, ModelNode
	if len(chain) != 3 {
		t.Fatalf("chain = %d nodes:\n%s", len(chain), g.Explain())
	}
	if chain[0].Cat() != RA || chain[1].Cat() != MLD || chain[2].Cat() != MLD {
		t.Errorf("categories = %v %v %v", chain[0].Cat(), chain[1].Cat(), chain[2].Cat())
	}
	mn := chain[2].(*ModelNode)
	if mn.OutputCol.Name != "score" || len(mn.InputCols) != 1 {
		t.Errorf("model node = %+v", mn)
	}
	if g.SourcePlan() == nil {
		t.Error("source plan missing")
	}
}

func TestFromPlanSinkAbovePredict(t *testing.T) {
	tb := smallTable(t, "t")
	pr := plan.NewPredict(plan.NewScan(tb), "m", []types.Column{{Name: "score", Type: types.Float}})
	lim := &plan.Limit{Child: pr, N: 3}
	g, err := FromPlan(lim, resolver(testPipeline()))
	if err != nil {
		t.Fatal(err)
	}
	sink := g.SinkRel()
	if sink == nil {
		t.Fatal("no sink rel")
	}
	s := plan.Explain(sink.Plan)
	if !strings.Contains(s, "Limit") || !strings.Contains(s, "Input") {
		t.Errorf("sink plan:\n%s", s)
	}
}

func TestFromPlanUnknownModel(t *testing.T) {
	tb := smallTable(t, "t")
	pr := plan.NewPredict(plan.NewScan(tb), "nope", []types.Column{{Name: "s", Type: types.Float}})
	if _, err := FromPlan(pr, resolver(testPipeline())); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestFromPlanMultiOutputRejected(t *testing.T) {
	tb := smallTable(t, "t")
	pr := plan.NewPredict(plan.NewScan(tb), "m", []types.Column{
		{Name: "a", Type: types.Float}, {Name: "b", Type: types.Float},
	})
	if _, err := FromPlan(pr, resolver(testPipeline())); err == nil {
		t.Error("multi-output PREDICT should fail")
	}
}

func TestExplainAndFind(t *testing.T) {
	tb := smallTable(t, "t")
	pr := plan.NewPredict(plan.NewScan(tb), "m", []types.Column{{Name: "score", Type: types.Float}})
	g, err := FromPlan(pr, resolver(testPipeline()))
	if err != nil {
		t.Fatal(err)
	}
	s := g.Explain()
	if !strings.Contains(s, "MLD") || !strings.Contains(s, "RA") {
		t.Errorf("explain:\n%s", s)
	}
	n := g.Find(func(n Node) bool { _, ok := n.(*ModelNode); return ok })
	if n == nil {
		t.Error("Find failed")
	}
	if g.Find(func(n Node) bool { return false }) != nil {
		t.Error("Find should return nil")
	}
}

func TestCategoryAndEngineStrings(t *testing.T) {
	if RA.String() != "RA" || LA.String() != "LA" || MLD.String() != "MLD" || UDF.String() != "UDF" {
		t.Error("category strings")
	}
	if EngineDB.String() != "db" || EngineML.String() != "ml" || EngineUnassigned.String() != "?" {
		t.Error("engine strings")
	}
}

func TestSplitNodeChain(t *testing.T) {
	tb := smallTable(t, "t")
	src := &RelNode{Plan: plan.NewScan(tb)}
	l := &ModelNode{M: &ml.LogisticRegression{W: []float64{1}}, InputCols: []string{"x"}, OutputCol: types.Column{Name: "s", Type: types.Float}}
	r := &ModelNode{M: &ml.LogisticRegression{W: []float64{2}}, InputCols: []string{"x"}, OutputCol: types.Column{Name: "s", Type: types.Float}}
	sp := &SplitNode{CondCol: "x", Threshold: 2, Left: l, Right: r, In: src}
	g := &Graph{Root: sp}
	chain := g.Chain()
	if len(chain) != 4 { // src, l, r, split
		t.Errorf("chain = %d", len(chain))
	}
	if !strings.Contains(sp.String(), "split") {
		t.Error("split String()")
	}
}
