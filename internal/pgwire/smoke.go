package pgwire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"raven/internal/server"
)

// smokePredictPg is the demo PREDICT statement over the preloaded
// hospital workload, with the age threshold inlined (the simple
// protocol carries no parameters).
const smokePredictPg = `SELECT d.id, p.score FROM PREDICT(MODEL='duration_of_stay',
	DATA=(SELECT * FROM patient_info AS pi
	      JOIN blood_tests AS bt ON pi.id = bt.id
	      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
	WITH (score FLOAT) AS p WHERE d.age > 50`

// smokePredictParam is the same statement as a pg extended-protocol
// prepared statement: $1 is the age threshold.
const smokePredictParam = `SELECT d.id, p.score FROM PREDICT(MODEL='duration_of_stay',
	DATA=(SELECT * FROM patient_info AS pi
	      JOIN blood_tests AS bt ON pi.id = bt.id
	      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
	WITH (score FLOAT) AS p WHERE d.age > $1`

// Smoke drives an end-to-end pass over the pg front end of a
// ravenserved instance that also serves HTTP: DDL + SELECT through the
// simple protocol, PREDICT through both protocols with byte-equivalent
// results against the HTTP/NDJSON path, the extended protocol's
// prepared PREDICT, tenant attribution of pg sessions in /stats
// (including the pgwire section), and a zero-quota tenant refused with
// SQLSTATE 53300. It is the body of `ravenserved -pgselftest` and the
// `make smoke-pgwire` CI gate.
func Smoke(pgAddr, httpBase string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	hc := &server.Client{Base: httpBase}

	// Connect as database pg-smoke: the startup params are the tenant.
	c, err := DialClient(ctx, pgAddr, DialOptions{User: "smoker", Database: "pg-smoke"})
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer c.Close()
	if c.BackendPID == 0 && c.BackendSecret == 0 {
		return errors.New("startup: no BackendKeyData")
	}
	if c.Params["server_encoding"] != "UTF8" {
		return fmt.Errorf("startup: parameter statuses missing, got %v", c.Params)
	}

	// Simple protocol: session-setup shims, then DDL + INSERT + SELECT in
	// one script, checking tags and rows.
	if _, err := c.SimpleQuery(`SET application_name = 'smoke'`); err != nil {
		return fmt.Errorf("SET shim: %w", err)
	}
	res, err := c.SimpleQuery(`
		CREATE TABLE pg_smoke_kv (k INT PRIMARY KEY, v FLOAT);
		INSERT INTO pg_smoke_kv VALUES (1, 1.5), (2, 2.5), (3, 3.5);
		SELECT k, v FROM pg_smoke_kv WHERE v > 2.0`)
	if err != nil {
		return fmt.Errorf("ddl+select script: %w", err)
	}
	last := res[len(res)-1]
	if last.Tag != "SELECT 2" || len(last.Rows) != 2 {
		return fmt.Errorf("script select: tag %q, %d rows, want SELECT 2", last.Tag, len(last.Rows))
	}
	if len(last.Cols) != 2 || last.Cols[0].Name != "k" || last.Cols[0].OID != oidInt8 || last.Cols[1].OID != oidFloat8 {
		return fmt.Errorf("script select: columns %+v", last.Cols)
	}

	// The acceptance bar: a PREDICT through psql's protocol returns
	// byte-for-byte what the HTTP/NDJSON path returns.
	pgRes, err := c.SimpleQuery(smokePredictPg)
	if err != nil {
		return fmt.Errorf("predict (simple): %w", err)
	}
	if len(pgRes) != 1 || len(pgRes[0].Rows) == 0 {
		return errors.New("predict (simple) returned no rows")
	}
	httpRes, err := hc.Query(server.QueryRequest{SQL: smokePredictPg})
	if err != nil {
		return fmt.Errorf("predict (http): %w", err)
	}
	if pgRes[0].Fingerprint() != httpRes.Fingerprint() {
		return errors.New("pg simple-protocol PREDICT differs from HTTP result")
	}

	// Extended protocol: prepared PREDICT with $1, same stream again.
	extRes, err := c.QueryExtended(smokePredictParam, "50")
	if err != nil {
		return fmt.Errorf("predict (extended): %w", err)
	}
	if !strings.HasPrefix(extRes.Tag, "SELECT ") {
		return fmt.Errorf("predict (extended): tag %q", extRes.Tag)
	}
	if extRes.Fingerprint() != httpRes.Fingerprint() {
		return errors.New("pg extended-protocol PREDICT differs from HTTP result")
	}

	// Stats: the pg session's queries billed to the startup-param tenant,
	// and the pgwire section is live.
	st, err := hc.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if st.Engine.Scheduler != nil {
		ts := st.Engine.Scheduler.Tenants["pg-smoke"]
		if ts.Admitted == 0 {
			return fmt.Errorf("pg tenant did not reach the scheduler: %+v", st.Engine.Scheduler.Tenants)
		}
	}
	if len(st.Pgwire) == 0 {
		return errors.New("stats: no pgwire section")
	}
	var ps Stats
	if err := json.Unmarshal(st.Pgwire, &ps); err != nil {
		return fmt.Errorf("stats: bad pgwire section: %w", err)
	}
	if ps.Connections < 1 || ps.Queries < 3 || ps.Messages["parse"] == 0 {
		return fmt.Errorf("stats: pgwire section implausible: %+v", ps)
	}

	// A zero-quota tenant is refused at admission with SQLSTATE 53300 —
	// the same 429 the HTTP path maps, through the shared error table.
	bc, err := DialClient(ctx, pgAddr, DialOptions{User: "blocked", Database: "pg-blocked"})
	if err != nil {
		return fmt.Errorf("dial blocked tenant: %w", err)
	}
	defer bc.Close()
	_, err = bc.SimpleQuery(`SELECT k FROM pg_smoke_kv`)
	var pgErr *PgError
	if !errors.As(err, &pgErr) || pgErr.Code != "53300" {
		return fmt.Errorf("blocked tenant: want SQLSTATE 53300, got %v", err)
	}

	return nil
}
