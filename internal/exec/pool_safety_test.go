package exec

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"raven/internal/plan"
	"raven/internal/storage"
	"raven/internal/types"
)

// poolSortTable builds a table of n rows with a descending int key and a
// float payload derived from it, so sorted output is trivially checkable:
// k must come out 0..n-1 and v must stay 2*k+0.5 row for row.
func poolSortTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	tb := storage.NewTable("ps", types.NewSchema(
		types.Column{Name: "k", Type: types.Int},
		types.Column{Name: "v", Type: types.Float},
	))
	for i := 0; i < n; i++ {
		k := int64(n - 1 - i)
		if err := tb.AppendRow(k, float64(2*k)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func newPoolRunSort(t *testing.T, tb *storage.Table, ctx context.Context) *RunSort {
	t.Helper()
	src, err := NewTableMorselSource(tb, []string{"k", "v"}, 512)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewRunSort(src, 4, []SortKeySpec{{Col: "k"}}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// verifyPoolSort checks retained output batches against the known sorted
// order of poolSortTable.
func verifyPoolSort(t *testing.T, label string, n int, got []*types.Batch) {
	t.Helper()
	i := 0
	for _, b := range got {
		ks, vs := b.Col("k"), b.Col("v")
		for r := 0; r < b.Len(); r++ {
			if ks.Ints[r] != int64(i) || vs.Floats[r] != float64(2*i)+0.5 {
				t.Fatalf("%s: row %d: got (%d, %v), want (%d, %v) — a recycled run buffer leaked into live results",
					label, i, ks.Ints[r], vs.Floats[r], i, float64(2*i)+0.5)
			}
			i++
		}
	}
	if i != n {
		t.Fatalf("%s: drained %d rows, want %d", label, i, n)
	}
}

// TestRunSortRecycledRunsNeverAliasResults is the aliasing safety net for
// the run-buffer pool: output batches retained across the whole query —
// and across a SECOND query that reuses the recycled run buffers — must
// keep their original values. If Next ever returned rows that share
// storage with a pooled run, the second query would scribble over them.
func TestRunSortRecycledRunsNeverAliasResults(t *testing.T) {
	const n = 10_000
	tb := poolSortTable(t, n)
	s := newPoolRunSort(t, tb, context.Background())

	drain := func() []*types.Batch {
		t.Helper()
		if err := s.Open(); err != nil {
			t.Fatal(err)
		}
		var out []*types.Batch
		for {
			b, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil || b.Len() == 0 {
				break
			}
			out = append(out, b)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	first := drain()
	gets1, puts1, news1 := s.pool.Stats()
	if gets1 != puts1 {
		t.Fatalf("after drain: pool gets=%d puts=%d — a run buffer was not returned", gets1, puts1)
	}
	if news1 == 0 || news1 > gets1 {
		t.Fatalf("after drain: pool news=%d gets=%d", news1, gets1)
	}

	// Second query over the same operator: its runs come out of the pool
	// (recycled buffers). If first's batches alias any run buffer, this
	// overwrites them.
	_ = drain()
	gets2, puts2, news2 := s.pool.Stats()
	if gets2 != puts2 {
		t.Fatalf("after second drain: pool gets=%d puts=%d", gets2, puts2)
	}
	if fresh := news2 - news1; fresh > news1 {
		t.Fatalf("second query allocated %d fresh run buffers (first used %d) — recycling is not happening", fresh, news1)
	}

	verifyPoolSort(t, "retained results after recycling", n, first)
}

// TestRunSortEarlyCloseReturnsRuns: a partially drained sort (LIMIT
// shape) must hand every undrained run back to the pool on Close, and
// the rows already emitted must survive the next query's reuse of those
// buffers.
func TestRunSortEarlyCloseReturnsRuns(t *testing.T) {
	const n = 10_000
	tb := poolSortTable(t, n)
	s := newPoolRunSort(t, tb, context.Background())

	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	head, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if head == nil || head.Len() == 0 {
		t.Fatal("no first batch")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	gets, puts, _ := s.pool.Stats()
	if gets != puts {
		t.Fatalf("after early close: pool gets=%d puts=%d — undrained runs leaked", gets, puts)
	}

	// Reuse the recycled buffers, then check the retained head batch.
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	verifyPoolSort(t, "head batch after early close", head.Len(), []*types.Batch{head})
}

// cancelAfterSource cancels a context after handing out a fixed number of
// morsels, so the sort fails mid-Open with workers in flight.
type cancelAfterSource struct {
	src    MorselSource
	cancel context.CancelFunc
	after  int64
	seen   atomic.Int64
}

func (c *cancelAfterSource) Open() error           { return c.src.Open() }
func (c *cancelAfterSource) Close() error          { return c.src.Close() }
func (c *cancelAfterSource) Schema() *types.Schema { return c.src.Schema() }
func (c *cancelAfterSource) NextMorsel() (int, *types.Batch, error) {
	seq, b, err := c.src.NextMorsel()
	if c.seen.Add(1) == c.after {
		c.cancel()
	}
	return seq, b, err
}

// TestRunSortCancelledMidMorselReleasesRuns: cancellation while run
// production is under way must error out of Open, and Close must return
// every run that was already built to the pool (the goroutine-leak tests
// cover the workers; this covers the buffers).
func TestRunSortCancelledMidMorselReleasesRuns(t *testing.T) {
	const n = 20_000
	tb := poolSortTable(t, n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inner, err := NewTableMorselSource(tb, []string{"k", "v"}, 256)
	if err != nil {
		t.Fatal(err)
	}
	src := &cancelAfterSource{src: inner, cancel: cancel, after: 3}
	s, err := NewRunSort(src, 4, []SortKeySpec{{Col: "k"}}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open(); err == nil {
		// Workers may have drained everything before the cancel landed on
		// a 1-core box; that is not a failure of the pool contract.
		for {
			b, nerr := s.Next()
			if nerr != nil || b == nil || b.Len() == 0 {
				break
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	gets, puts, _ := s.pool.Stats()
	if gets != puts {
		t.Fatalf("after cancelled sort: pool gets=%d puts=%d — error path leaked run buffers", gets, puts)
	}
}

// TestRunSortErrorPathReleasesRuns: a source that fails partway through
// (storage error shape) must leave the pool balanced once the operator
// closes, and the operator must stay usable for the retry.
func TestRunSortErrorPathReleasesRuns(t *testing.T) {
	const n = 20_000
	tb := poolSortTable(t, n)
	inner, err := NewTableMorselSource(tb, []string{"k", "v"}, 256)
	if err != nil {
		t.Fatal(err)
	}
	src := &failAfterSource{src: inner, after: 5}
	s, err := NewRunSort(src, 4, []SortKeySpec{{Col: "k"}}, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open(); err == nil {
		t.Fatal("Open succeeded past an erroring source")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	gets, puts, _ := s.pool.Stats()
	if gets != puts {
		t.Fatalf("after failed sort: pool gets=%d puts=%d — error path leaked run buffers", gets, puts)
	}
}

// failAfterSource returns a hard error after a fixed number of morsels.
type failAfterSource struct {
	src   MorselSource
	after int64
	seen  atomic.Int64
}

func (f *failAfterSource) Open() error           { return f.src.Open() }
func (f *failAfterSource) Close() error          { return f.src.Close() }
func (f *failAfterSource) Schema() *types.Schema { return f.src.Schema() }
func (f *failAfterSource) NextMorsel() (int, *types.Batch, error) {
	if f.seen.Add(1) > f.after {
		return 0, nil, errSourceBroken
	}
	return f.src.NextMorsel()
}

var errSourceBroken = errors.New("pool test: source broke mid-scan")

// TestSortPlanStreamedBatchesSurviveRecycling drives the same guarantee
// through Compile: batches collected from a compiled parallel ORDER BY
// stay intact after a second execution recycles the operator's buffers.
func TestSortPlanStreamedBatchesSurviveRecycling(t *testing.T) {
	const n = 8_000
	tb := poolSortTable(t, n)
	root := &plan.Sort{Child: plan.NewScan(tb), Keys: []plan.SortKey{{Col: "k"}}}
	env := parEnv(4)

	op, err := Compile(root, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	var retained []*types.Batch
	for {
		b, err := op.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil || b.Len() == 0 {
			break
		}
		retained = append(retained, b)
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh compile+run of the same plan churns the shared vector pools.
	_ = compileCollect(t, root, env)

	verifyPoolSort(t, "streamed batches after second run", n, retained)
}
