package ml

import (
	"fmt"
	"math"
	"sort"
)

// LinearRegression predicts W·x + B.
type LinearRegression struct {
	W []float64
	B float64
}

// NumFeatures implements Model.
func (m *LinearRegression) NumFeatures() int { return len(m.W) }

// Kind implements Model.
func (m *LinearRegression) Kind() string { return "linreg" }

// Predict implements Model.
func (m *LinearRegression) Predict(in Matrix) ([]float64, error) {
	if in.Cols != len(m.W) {
		return nil, fmt.Errorf("ml: linreg expects %d features, got %d", len(m.W), in.Cols)
	}
	out := make([]float64, in.Rows)
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		s := m.B
		for j, w := range m.W {
			s += w * row[j]
		}
		out[i] = s
	}
	return out, nil
}

// PredictInto implements ModelInto.
func (m *LinearRegression) PredictInto(in Matrix, out []float64, _ *PredictScratch) error {
	if in.Cols != len(m.W) {
		return fmt.Errorf("ml: linreg expects %d features, got %d", len(m.W), in.Cols)
	}
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		s := m.B
		for j, w := range m.W {
			s += w * row[j]
		}
		out[i] = s
	}
	return nil
}

// UsedFeatures implements Model: features with non-zero weight.
func (m *LinearRegression) UsedFeatures() []int { return nonZero(m.W) }

// LogisticRegression predicts sigmoid(W·x + B), the class-1 probability.
type LogisticRegression struct {
	W []float64
	B float64
}

// NumFeatures implements Model.
func (m *LogisticRegression) NumFeatures() int { return len(m.W) }

// Kind implements Model.
func (m *LogisticRegression) Kind() string { return "logreg" }

// Predict implements Model.
func (m *LogisticRegression) Predict(in Matrix) ([]float64, error) {
	if in.Cols != len(m.W) {
		return nil, fmt.Errorf("ml: logreg expects %d features, got %d", len(m.W), in.Cols)
	}
	out := make([]float64, in.Rows)
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		s := m.B
		for j, w := range m.W {
			s += w * row[j]
		}
		out[i] = 1 / (1 + math.Exp(-s))
	}
	return out, nil
}

// PredictInto implements ModelInto.
func (m *LogisticRegression) PredictInto(in Matrix, out []float64, _ *PredictScratch) error {
	if in.Cols != len(m.W) {
		return fmt.Errorf("ml: logreg expects %d features, got %d", len(m.W), in.Cols)
	}
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		s := m.B
		for j, w := range m.W {
			s += w * row[j]
		}
		out[i] = 1 / (1 + math.Exp(-s))
	}
	return nil
}

// UsedFeatures implements Model: features with non-zero weight.
func (m *LogisticRegression) UsedFeatures() []int { return nonZero(m.W) }

// Sparsity returns the fraction of zero weights — the quantity the paper
// reports for its L1-regularized flight-delay models (41.75% and 80.96%,
// §4.1 model-projection pushdown).
func (m *LogisticRegression) Sparsity() float64 {
	if len(m.W) == 0 {
		return 0
	}
	zeros := 0
	for _, w := range m.W {
		if w == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(m.W))
}

// Compact drops zero-weight features and returns the narrowed model plus
// the kept input ordinals (the projection list pushed into the data side).
func (m *LogisticRegression) Compact() (*LogisticRegression, []int) {
	kept := nonZero(m.W)
	w := make([]float64, len(kept))
	for i, j := range kept {
		w[i] = m.W[j]
	}
	return &LogisticRegression{W: w, B: m.B}, kept
}

// PinFeatures folds known-constant features into the bias and drops them:
// the logistic-regression analogue of predicate-based pruning for one-hot
// encoded categorical features (§4.1). values maps feature ordinal to its
// constant. Returns the narrowed model and the kept input ordinals.
func (m *LogisticRegression) PinFeatures(values map[int]float64) (*LogisticRegression, []int) {
	b := m.B
	var kept []int
	var w []float64
	for j, wj := range m.W {
		if v, ok := values[j]; ok {
			b += wj * v
			continue
		}
		kept = append(kept, j)
		w = append(w, wj)
	}
	return &LogisticRegression{W: w, B: b}, kept
}

func nonZero(w []float64) []int {
	var out []int
	for j, x := range w {
		if x != 0 {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}

// MLP is a fitted multi-layer perceptron with ReLU hidden layers. Weights
// are row-major (in × out); the final layer output passes through sigmoid
// when Classifier is true.
type MLP struct {
	// Weights[l] has Dims[l] × Dims[l+1] entries.
	Weights [][]float64
	Biases  [][]float64
	Dims    []int
	// Classifier applies a sigmoid on the (single) output.
	Classifier bool
}

// NumFeatures implements Model.
func (m *MLP) NumFeatures() int {
	if len(m.Dims) == 0 {
		return 0
	}
	return m.Dims[0]
}

// Kind implements Model.
func (m *MLP) Kind() string { return "mlp" }

// Predict implements Model. The final layer must have width 1.
func (m *MLP) Predict(in Matrix) ([]float64, error) {
	if len(m.Dims) < 2 {
		return nil, fmt.Errorf("ml: mlp needs at least one layer")
	}
	if in.Cols != m.Dims[0] {
		return nil, fmt.Errorf("ml: mlp expects %d features, got %d", m.Dims[0], in.Cols)
	}
	if m.Dims[len(m.Dims)-1] != 1 {
		return nil, fmt.Errorf("ml: mlp Predict needs single output, has %d", m.Dims[len(m.Dims)-1])
	}
	cur := in.Data
	rows := in.Rows
	for l := 0; l < len(m.Weights); l++ {
		din, dout := m.Dims[l], m.Dims[l+1]
		next := make([]float64, rows*dout)
		w, b := m.Weights[l], m.Biases[l]
		for i := 0; i < rows; i++ {
			xrow := cur[i*din : (i+1)*din]
			orow := next[i*dout : (i+1)*dout]
			copy(orow, b)
			for p := 0; p < din; p++ {
				x := xrow[p]
				if x == 0 {
					continue
				}
				wrow := w[p*dout : (p+1)*dout]
				for j := range wrow {
					orow[j] += x * wrow[j]
				}
			}
			if l < len(m.Weights)-1 {
				for j := range orow {
					if orow[j] < 0 {
						orow[j] = 0
					}
				}
			}
		}
		cur = next
	}
	out := make([]float64, rows)
	copy(out, cur)
	if m.Classifier {
		for i, x := range out {
			out[i] = 1 / (1 + math.Exp(-x))
		}
	}
	return out, nil
}

// UsedFeatures implements Model: inputs whose first-layer weights are not
// all zero.
func (m *MLP) UsedFeatures() []int {
	if len(m.Weights) == 0 {
		return nil
	}
	din, dout := m.Dims[0], m.Dims[1]
	var out []int
	for p := 0; p < din; p++ {
		row := m.Weights[0][p*dout : (p+1)*dout]
		for _, w := range row {
			if w != 0 {
				out = append(out, p)
				break
			}
		}
	}
	return out
}
