package bench

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"time"

	"raven"
	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/server"
	"raven/internal/train"
)

// ServeConcurrency measures the serving front end under concurrent HTTP
// clients (1→64) issuing the same PREDICT query, with and without
// admission control (limit 4, generous queue). It is the ablation behind
// the ravenserved design: without admission every query fans out
// DOP-wide immediately and p99 collapses under oversubscription; with
// admission the active-query gauge stays at the limit and tail latency
// tracks the queue instead of the thrash. On single-core CI hosts the
// two variants converge — the table is still recorded as the regression
// anchor for the wire path itself.
func ServeConcurrency(cfg Config) (*Table, error) {
	t := &Table{
		ID:         "ServeConcurrency",
		Title:      "HTTP serving throughput/p99 vs concurrent clients, with and without admission control",
		PaperShape: "in-engine inference served under concurrency (the production scenario the paper motivates)",
	}
	rows, trees, perClient := 4000, 8, 6
	clientCounts := []int{1, 4, 16, 64}
	if cfg.Quick {
		rows, trees, perClient = 2000, 4, 3
	}
	const admissionLimit = 4

	q := servingPredictQuery

	variants := []struct {
		series string
		opts   []raven.Option
	}{
		{"no admission", nil},
		{fmt.Sprintf("admission(%d)", admissionLimit), []raven.Option{
			raven.WithMaxConcurrentQueries(admissionLimit),
			raven.WithSchedulerQueue(256, 0),
		}},
	}
	for _, v := range variants {
		// The closure makes the deferred shutdown per-variant: a failed
		// measurement must not leak its serving stack into later runs.
		if err := func() (reterr error) {
			db, base, shutdown, err := servingBench(cfg, rows, trees, v.opts...)
			if err != nil {
				return err
			}
			defer func() {
				if e := shutdown(); e != nil && reterr == nil {
					reterr = e
				}
			}()

			// Warm the plan and session caches once; the serving numbers
			// are about concurrency, not cold compiles.
			warm := &server.Client{Base: base, HTTP: &http.Client{}}
			if _, err := warm.Query(server.QueryRequest{SQL: q}); err != nil {
				return fmt.Errorf("warmup: %w", err)
			}

			for _, nc := range clientCounts {
				lat, elapsed, err := hammer(base, q, nc, perClient)
				if err != nil {
					return err
				}
				total := nc * perClient
				qps := float64(total) / elapsed.Seconds()
				note := fmt.Sprintf("%s @ %d clients: %.1f q/s", v.series, nc, qps)
				if v.opts != nil {
					st := db.Scheduler().Stats()
					note += fmt.Sprintf(" (max active %d/%d)", st.MaxActive, admissionLimit)
					if st.MaxActive > admissionLimit {
						return fmt.Errorf("admission breached: max active %d > %d", st.MaxActive, admissionLimit)
					}
				}
				t.AddMillis("p99 "+v.series, fmt.Sprintf("%d clients", nc), percentile(lat, 0.99), note)
				t.AddMillis("mean "+v.series, fmt.Sprintf("%d clients", nc), mean(lat), "")
			}
			return nil
		}(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// servingPredictQuery is the PREDICT statement every serving experiment
// measures, shared (like servingBench) so the experiments cannot
// silently drift onto different workloads.
const servingPredictQuery = `SELECT d.id, p.score FROM PREDICT(MODEL='duration_of_stay',
	DATA=(SELECT * FROM patient_info AS pi
	      JOIN blood_tests AS bt ON pi.id = bt.id
	      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
	WITH (score FLOAT) AS p WHERE d.age > 40`

// servingBench boots one serving-experiment stack — an engine built
// from cfg plus the variant's extra options, loaded with the hospital
// workload and a stored forest model, behind a real HTTP listener —
// shared by every serving experiment so their baselines cannot diverge.
// shutdown drains the server and surfaces any serve error.
func servingBench(cfg Config, rows, trees int, extra ...raven.Option) (db *raven.DB, base string, shutdown func() error, err error) {
	opts := append([]raven.Option{
		raven.WithParallelism(cfg.Parallelism),
		raven.WithMorselSize(cfg.MorselSize),
	}, extra...)
	db = raven.MustOpen(opts...)
	h, err := data.GenHospital(db.Catalog(), rows, 1000, 17)
	if err != nil {
		return nil, "", nil, err
	}
	rf := train.FitForest(h.TrainX, h.TrainY, train.ForestOptions{
		NumTrees: trees,
		Seed:     3,
		Tree:     train.TreeOptions{MaxDepth: 8, MinLeaf: 10},
	})
	if err := db.StoreModel("duration_of_stay", &ml.Pipeline{Final: rf, InputColumns: h.FeatureCols}); err != nil {
		return nil, "", nil, err
	}
	srv := server.New(db, server.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	shutdown = func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if serr := <-serveErr; serr != nil && serr != http.ErrServerClosed {
			return serr
		}
		return nil
	}
	return db, "http://" + l.Addr().String(), shutdown, nil
}

// hammer runs nc concurrent clients, each issuing perClient requests,
// returning all per-request latencies (ms) and the wall time.
func hammer(base, q string, nc, perClient int) ([]float64, time.Duration, error) {
	type result struct {
		lat []float64
		err error
	}
	results := make(chan result, nc)
	start := time.Now()
	for i := 0; i < nc; i++ {
		go func() {
			hc := &http.Client{Transport: &http.Transport{}}
			defer hc.CloseIdleConnections()
			c := &server.Client{Base: base, HTTP: hc}
			var lats []float64
			for j := 0; j < perClient; j++ {
				t0 := time.Now()
				res, err := c.Query(server.QueryRequest{SQL: q})
				if err != nil {
					results <- result{nil, err}
					return
				}
				if len(res.Rows) == 0 {
					results <- result{nil, fmt.Errorf("empty result under load")}
					return
				}
				lats = append(lats, float64(time.Since(t0).Microseconds())/1000)
			}
			results <- result{lats, nil}
		}()
	}
	var all []float64
	for i := 0; i < nc; i++ {
		r := <-results
		if r.err != nil {
			return nil, 0, r.err
		}
		all = append(all, r.lat...)
	}
	return all, time.Since(start), nil
}

// percentile is nearest-rank with ceiling, so small samples report at
// or above the requested quantile (p99 of 6 samples is the max, not the
// 5th value).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(p * float64(len(s)-1)))
	return s[idx]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
