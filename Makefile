# One-command tier-1 gate: `make ci` is what every PR must keep green.
GO ?= go

.PHONY: all build test race vet bench ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the parallel executor
# tests (internal/exec, internal/ort, package raven) are written to hammer
# shared tables, predictors and the session cache when run this way.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates the paper experiment tables at quick scale.
bench:
	$(GO) run ./cmd/ravenbench -quick

ci: build vet test race
