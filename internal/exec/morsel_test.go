package exec

import (
	"errors"
	"sync"
	"testing"
	"time"

	"raven/internal/expr"
	"raven/internal/plan"
	"raven/internal/types"
)

func TestTableMorselSourceCoversEveryRowOnce(t *testing.T) {
	tb := numbersTable(t, 100001) // deliberately not a multiple of the morsel size
	src, err := NewTableMorselSource(tb, nil, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Open(); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := make(map[int]int) // seq -> rows
	total := 0
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seq, b, err := src.NextMorsel()
				if err != nil {
					t.Error(err)
					return
				}
				if b == nil {
					return
				}
				mu.Lock()
				seen[seq] += b.Len()
				total += b.Len()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if total != 100001 {
		t.Fatalf("claimed %d rows, want 100001", total)
	}
	want := (100001 + 4095) / 4096
	if len(seen) != want {
		t.Fatalf("claimed %d morsels, want %d", len(seen), want)
	}
	for seq := 0; seq < want; seq++ {
		if _, ok := seen[seq]; !ok {
			t.Fatalf("sequence %d never claimed (seqs must be dense)", seq)
		}
	}
}

func TestExchangeMatchesSerialByteForByte(t *testing.T) {
	tb := numbersTable(t, 120000)
	pred := expr.NewBinary(expr.OpGt, &expr.Column{Name: "x"}, expr.FloatLit(10))
	exprs := []expr.Expr{
		&expr.Column{Name: "id"},
		&expr.Column{Name: "x"},
		expr.NewBinary(expr.OpMul, &expr.Column{Name: "x"}, expr.FloatLit(2)),
	}
	names := []string{"id", "x", "x2"}

	serial := func() Operator {
		s, _ := NewTableScan(tb, nil)
		f := &FilterOp{Child: s, Pred: pred}
		p, err := NewProjectOp(f, exprs, names)
		if err != nil {
			t.Fatal(err)
		}
		return NewPredictOp(p, constPredictor{bias: 5}, []types.Column{{Name: "score", Type: types.Float}})
	}
	want, err := Collect(serial())
	if err != nil {
		t.Fatal(err)
	}

	for _, dop := range []int{2, 4, 7} {
		src, err := NewTableMorselSource(tb, nil, 4096)
		if err != nil {
			t.Fatal(err)
		}
		ex := NewExchange(src, dop)
		for _, st := range []Stage{
			&FilterStage{Pred: pred},
			&ProjectStage{Exprs: exprs, Names: names},
			&PredictStage{Predictor: constPredictor{bias: 5}, OutputCols: []types.Column{{Name: "score", Type: types.Float}}},
		} {
			if err := ex.Push(st); err != nil {
				t.Fatal(err)
			}
		}
		got, err := Collect(ex)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("dop %d: %d rows vs serial %d", dop, got.Len(), want.Len())
		}
		for _, col := range []string{"id", "x2", "score"} {
			gv, wv := got.Col(col), want.Col(col)
			for i := 0; i < got.Len(); i++ {
				if gv.AsFloat(i) != wv.AsFloat(i) {
					t.Fatalf("dop %d: %s[%d] = %v, serial %v", dop, col, i, gv.AsFloat(i), wv.AsFloat(i))
				}
			}
		}
	}
}

func TestExchangeRejectsPushAfterOpen(t *testing.T) {
	tb := numbersTable(t, 1000)
	src, _ := NewTableMorselSource(tb, nil, 256)
	ex := NewExchange(src, 2)
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if err := ex.Push(&FilterStage{Pred: expr.BoolLit(true)}); err == nil {
		t.Fatal("push after open should fail")
	}
}

// slowFirstStage stalls the very first morsel it sees, forcing every other
// worker to run far ahead — the worst case for the reorder window. The
// exchange must neither deadlock (claims are gated by window tokens) nor
// emit out of order.
type slowFirstStage struct {
	once sync.Once
}

func (s *slowFirstStage) OutSchema(in *types.Schema) (*types.Schema, error) { return in, nil }

func (s *slowFirstStage) Apply(b *types.Batch) (*types.Batch, error) {
	s.once.Do(func() { time.Sleep(50 * time.Millisecond) })
	return b, nil
}

func TestExchangeBoundedReorderWithStalledWorker(t *testing.T) {
	tb := numbersTable(t, 200000)
	src, _ := NewTableMorselSource(tb, nil, 512) // ~390 morsels
	ex := NewExchange(src, 4)
	if err := ex.Push(&slowFirstStage{}); err != nil {
		t.Fatal(err)
	}
	out, err := Collect(ex)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 200000 {
		t.Fatalf("rows = %d", out.Len())
	}
	for i := 0; i < out.Len(); i += 4999 {
		if out.Col("id").Ints[i] != int64(i) {
			t.Fatalf("id[%d] = %d: merge order broken by stalled worker", i, out.Col("id").Ints[i])
		}
	}
}

type errPredictor struct{}

func (errPredictor) PredictBatch(*types.Batch) ([]*types.Vector, error) {
	return nil, errors.New("predict boom")
}

func TestExchangePropagatesStageErrors(t *testing.T) {
	tb := numbersTable(t, 100000)
	src, _ := NewTableMorselSource(tb, nil, 4096)
	ex := NewExchange(src, 4)
	if err := ex.Push(&PredictStage{Predictor: errPredictor{}, OutputCols: []types.Column{{Name: "s", Type: types.Float}}}); err != nil {
		t.Fatal(err)
	}
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	var firstErr error
	for {
		b, err := ex.Next()
		if err != nil {
			firstErr = err
			break
		}
		if b == nil {
			t.Fatal("worker error should surface, got clean EOF")
		}
	}
	// The error is latched: re-polling must keep failing rather than skip
	// the dead morsel and emit a truncated stream.
	if _, err := ex.Next(); err == nil || err.Error() != firstErr.Error() {
		t.Fatalf("re-poll after failure = %v, want latched %v", err, firstErr)
	}
}

func TestExchangeEarlyCloseUnderLimit(t *testing.T) {
	tb := numbersTable(t, 200000)
	src, _ := NewTableMorselSource(tb, nil, 1024)
	ex := NewExchange(src, 4)
	if err := ex.Push(&FilterStage{Pred: expr.NewBinary(expr.OpGt, &expr.Column{Name: "x"}, expr.FloatLit(-1))}); err != nil {
		t.Fatal(err)
	}
	lim := &LimitOp{Child: ex, N: 10}
	out, err := Collect(lim)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Fatalf("rows = %d", out.Len())
	}
	// first ten ids in scan order — the deterministic merge guarantee
	for i := 0; i < 10; i++ {
		if out.Col("id").Ints[i] != int64(i) {
			t.Fatalf("id[%d] = %d (limit over exchange must keep scan order)", i, out.Col("id").Ints[i])
		}
	}
}

func TestPredictOpSliceParallelMatchesSerial(t *testing.T) {
	tb := numbersTable(t, 100000)
	// A single table-sized batch is the shape where PredictOp's
	// slice-parallel inference kicks in (serial operators above breakers).
	build := func(par int) Operator {
		s, _ := NewTableScan(tb, nil)
		s.BatchSize = tb.NumRows()
		op := NewPredictOp(s, constPredictor{bias: 2}, []types.Column{{Name: "score", Type: types.Float}})
		op.Parallelism = par
		op.MorselSize = 4096
		return op
	}
	want, err := Collect(build(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(build(4))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("rows: %d vs %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.Col("score").Floats[i] != want.Col("score").Floats[i] {
			t.Fatalf("score[%d]: %v vs %v", i, got.Col("score").Floats[i], want.Col("score").Floats[i])
		}
	}
}

func TestCompiledExchangeConcurrentQueriesShareTable(t *testing.T) {
	tb := numbersTable(t, 120000)
	scan := plan.NewScan(tb)
	f := &plan.Filter{Child: scan, Pred: expr.NewBinary(expr.OpGt, &expr.Column{Name: "x"}, expr.FloatLit(100))}
	pr := plan.NewPredict(f, "m", []types.Column{{Name: "score", Type: types.Float}})
	env := &Env{
		Parallelism: 4,
		PredictorFactory: func(string, *types.Schema, []types.Column) (Predictor, error) {
			return constPredictor{bias: 7}, nil
		},
	}
	serialEnv := &Env{Parallelism: 1, PredictorFactory: env.PredictorFactory}
	sop, err := Compile(pr, serialEnv)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(sop)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for q := 0; q < 6; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			op, err := Compile(pr, env)
			if err != nil {
				t.Error(err)
				return
			}
			got, err := Collect(op)
			if err != nil {
				t.Error(err)
				return
			}
			if got.Len() != want.Len() {
				t.Errorf("rows = %d, want %d", got.Len(), want.Len())
				return
			}
			for i := 0; i < got.Len(); i++ {
				if got.Col("score").Floats[i] != want.Col("score").Floats[i] {
					t.Errorf("score[%d] differs", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}
