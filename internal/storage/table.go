// Package storage implements the in-memory columnar storage engine and
// catalog that play the role of SQL Server in the reproduction: tables,
// table statistics, and the transactional, versioned model store that gives
// models the same governance guarantees as data (paper §1, §2).
package storage

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"raven/internal/types"
)

// Table is an append-only columnar table. Reads take a snapshot length so
// concurrent appends never tear a scan.
type Table struct {
	Name   string
	schema *types.Schema

	mu   sync.RWMutex
	cols []*types.Vector
	rows int

	// dataVersion counts content changes (appends). The catalog version
	// only moves on DDL and model stores, so caches keyed by it alone
	// would serve stale rows after an INSERT; result caches validate
	// against this counter instead. Bumped under mu — so a version read
	// taken before an append started is guaranteed stale by the time the
	// new rows are visible to a scan — but stored atomically so
	// validation reads never block behind a bulk load.
	dataVersion atomic.Uint64
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *types.Schema) *Table {
	cols := make([]*types.Vector, schema.Len())
	for i, c := range schema.Columns {
		cols[i] = types.NewVector(c.Type, 0)
	}
	return &Table{Name: name, schema: schema, cols: cols}
}

// Schema returns the table schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// NumRows returns the current row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// DataVersion returns the table's content version: 0 for a fresh table,
// bumped once per AppendRow/AppendBatch. A cache entry that recorded the
// version before executing is invalid the moment any append lands, even
// one racing the execution (the bump happens under the same lock that
// makes the new rows visible).
func (t *Table) DataVersion() uint64 { return t.dataVersion.Load() }

// AppendRow appends a single row of raw Go values in schema order.
func (t *Table) AppendRow(vals ...any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(vals) != len(t.cols) {
		return fmt.Errorf("storage: table %s: row arity %d != %d", t.Name, len(vals), len(t.cols))
	}
	// Bump before mutating: a failed append may still have touched
	// columns, and a spurious invalidation is harmless where a missed one
	// is not.
	t.dataVersion.Add(1)
	for i, v := range vals {
		if err := t.cols[i].Append(v); err != nil {
			return fmt.Errorf("storage: table %s: %w", t.Name, err)
		}
	}
	t.rows++
	return nil
}

// AppendBatch appends all rows of a batch whose columns match the schema.
func (t *Table) AppendBatch(b *types.Batch) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(b.Vecs) != len(t.cols) {
		return fmt.Errorf("storage: table %s: batch arity %d != %d", t.Name, len(b.Vecs), len(t.cols))
	}
	t.dataVersion.Add(1)
	for i := range t.cols {
		if err := t.cols[i].AppendVector(b.Vecs[i]); err != nil {
			return fmt.Errorf("storage: table %s: %w", t.Name, err)
		}
	}
	t.rows += b.Len()
	return nil
}

// ScanRange returns a zero-copy batch over rows [lo, hi). Callers must not
// mutate the returned vectors.
func (t *Table) ScanRange(lo, hi int) *types.Batch {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if hi > t.rows {
		hi = t.rows
	}
	if lo > hi {
		lo = hi
	}
	vecs := make([]*types.Vector, len(t.cols))
	for i, c := range t.cols {
		vecs[i] = c.Slice(lo, hi)
	}
	return &types.Batch{Schema: t.schema, Vecs: vecs}
}

// Scan returns the whole table as one zero-copy batch.
func (t *Table) Scan() *types.Batch { return t.ScanRange(0, t.NumRows()) }

// ColumnStats summarizes one column for optimizer use: min/max for numeric
// columns, and the set of distinct values when small. The cross optimizer
// uses these to derive predicates from data properties (paper §4.1,
// "predicate-based pruning ... based on data properties").
type ColumnStats struct {
	Name          string
	Min, Max      float64
	DistinctCount int
	// Distinct holds the distinct values when DistinctCount <= maxDistinct
	// (as float64 for numeric columns; strings use DistinctStrings).
	Distinct        []float64
	DistinctStrings []string
	NumRows         int
}

const maxDistinct = 64

// Stats computes fresh statistics for the named column. Statistics are
// computed on demand rather than cached: tables in this engine are
// bulk-loaded once per experiment.
func (t *Table) Stats(col string) (*ColumnStats, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx := t.schema.IndexOf(col)
	if idx < 0 {
		return nil, fmt.Errorf("storage: table %s has no column %q", t.Name, col)
	}
	v := t.cols[idx]
	st := &ColumnStats{Name: col, Min: math.Inf(1), Max: math.Inf(-1), NumRows: t.rows}
	switch v.Type {
	case types.Float, types.Int, types.Bool:
		seen := make(map[float64]struct{})
		for i := 0; i < t.rows; i++ {
			x := v.AsFloat(i)
			if x < st.Min {
				st.Min = x
			}
			if x > st.Max {
				st.Max = x
			}
			if len(seen) <= maxDistinct {
				seen[x] = struct{}{}
			}
		}
		st.DistinctCount = len(seen)
		if len(seen) <= maxDistinct {
			for x := range seen {
				st.Distinct = append(st.Distinct, x)
			}
		}
	case types.String:
		seen := make(map[string]struct{})
		for i := 0; i < t.rows; i++ {
			if len(seen) <= maxDistinct {
				seen[v.Strings[i]] = struct{}{}
			}
		}
		st.DistinctCount = len(seen)
		if len(seen) <= maxDistinct {
			for s := range seen {
				st.DistinctStrings = append(st.DistinctStrings, s)
			}
		}
	}
	return st, nil
}
