# One-command tier-1 gate: `make ci` is what every PR must keep green.
GO ?= go
# Coverage floor for `make cover` (percent of statements).
COVER_FLOOR ?= 70

.PHONY: all build test race vet bench bench-quick cover smoke smoke-serve ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the parallel executor
# tests (internal/exec, internal/ort, package raven) are written to hammer
# shared tables, predictors and the session cache when run this way, and
# the cancellation tests (cancel_test.go) double as goroutine-leak checks:
# they fail if exchange workers or predictor goroutines survive a
# cancelled query.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# cover reports statement coverage and enforces a floor so the serving-API
# surface (prepared statements, plan cache, streaming, cancellation) stays
# tested as it grows.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < f+0) { printf "FAIL: coverage %.1f%% below floor %s%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% (floor %s%%)\n", t, f }'

# smoke drives the real CLI through the streaming serving API with a
# deadline, end to end.
smoke:
	echo "SELECT COUNT(*) AS n FROM patient_info" | $(GO) run ./cmd/ravensql -rows 2000 -timeout 30s

# smoke-serve boots ravenserved on a random port and drives the wire
# protocol end to end over real HTTP: DDL + INSERT through /query, a
# parameterized PREDICT, the prepared-statement warm path, /stats, and a
# graceful drain. One process, exits non-zero on any failure.
smoke-serve:
	$(GO) run ./cmd/ravenserved -selftest -rows 2000

# bench regenerates the paper experiment tables at quick scale.
bench:
	$(GO) run ./cmd/ravenbench -quick

# bench-quick smoke-runs the pipeline-breaker ablation and the serving
# concurrency ablation and records both, so `make ci` catches breaker
# regressions (a breaker that silently serializes or errors) and serving
# regressions (admission breach, wire-path breakage) without paying for
# the full paper suite. BENCH_JSON / BENCH_SERVE_JSON are where the
# tables are recorded; `make ci` points them at untracked scratch paths
# so routine CI runs don't churn the checked-in BENCH_*.json files —
# regenerate those deliberately with a plain `make bench-quick`.
BENCH_JSON ?= BENCH_parallel_breakers.json
BENCH_SERVE_JSON ?= BENCH_serve.json
bench-quick:
	$(GO) run ./cmd/ravenbench -quick -only ParallelBreakers -json $(BENCH_JSON)
	$(GO) run ./cmd/ravenbench -quick -only ServeConcurrency -json $(BENCH_SERVE_JSON)

ci: build vet test race smoke smoke-serve
	@$(MAKE) bench-quick BENCH_JSON=.bench_ci.json BENCH_SERVE_JSON=.bench_serve_ci.json
