// Package reqopt is the single request-options surface shared by every
// wire front end (HTTP/NDJSON and pgwire). The per-request knobs —
// tenant, priority, DOP, timeout, no_cache — historically accreted as
// three parallel mechanisms (X-Raven-* headers, JSON body fields,
// context funcs); this package replaces them with one Options struct,
// one documented resolution order, and one clamp for untrusted wire
// input, so a second protocol cannot re-implement the knobs
// inconsistently.
//
// # Resolution order
//
// Every knob resolves through the same layer stack, first set value
// wins:
//
//	ctx layer        > per-request      > per-statement        > server default
//	(trusted proxy:  (body fields,     (the tag a prepared    (ravenserved
//	 X-Raven-*       pg session        statement was          flags)
//	 headers / pg    params)           registered under)
//	 startup params)
//
// A front end builds one Options value per layer it knows about and
// calls Resolve with the layers in that order. NoCache is a one-way
// flag: any layer can turn the cache off for a request, none can turn
// it back on (matching the engine's NoResultCache semantics).
//
// Untrusted wire values pass through Clamp before reaching the engine:
// priority is bounded to ±MaxWirePriority (the scheduler's aging guard
// closes one priority level per 100ms, so an unbounded client value
// could park ahead of everyone for hours) and the requested DOP to
// 8×GOMAXPROCS (goroutine fan-out is allocated per request).
package reqopt

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"raven"
)

// MaxWirePriority bounds wire-supplied priorities (see Clamp).
const MaxWirePriority = 100

// MaxWireDOP returns the per-request parallelism cap applied to wire
// clients, on top of any engine slot budget.
func MaxWireDOP() int { return 8 * runtime.GOMAXPROCS(0) }

// Options is one resolution layer of the shared per-request knobs.
// Zero fields mean "unset at this layer" — Resolve falls through to the
// next layer. Priority is a pointer because an explicit 0 is a real
// value (it demotes a statement registered at a higher priority), so
// presence must be distinguishable from absence.
type Options struct {
	// Tenant attributes the request's admission (quotas, per-tenant
	// stats). "" = unset.
	Tenant string
	// Priority orders waiting admissions (higher first). nil = unset.
	Priority *int
	// DOP is the requested degree of parallelism (worker slots).
	// 0 = unset (engine default).
	DOP int
	// Timeout bounds the whole request. 0 = unset.
	Timeout time.Duration
	// NoCache bypasses the result cache for this request: no lookup, no
	// population. One-way: once any layer sets it, it stays set.
	NoCache bool
}

// Int boxes an int for the Priority field.
func Int(v int) *int { return &v }

// Resolve merges layers in precedence order (earlier wins per field):
// pass them as ctx > per-request > per-statement > server default.
func Resolve(layers ...Options) Options {
	var out Options
	for _, l := range layers {
		if out.Tenant == "" {
			out.Tenant = l.Tenant
		}
		if out.Priority == nil {
			out.Priority = l.Priority
		}
		if out.DOP == 0 {
			out.DOP = l.DOP
		}
		if out.Timeout == 0 {
			out.Timeout = l.Timeout
		}
		out.NoCache = out.NoCache || l.NoCache
	}
	return out
}

// Clamp bounds the untrusted knobs: priority to ±MaxWirePriority, DOP
// to [0, MaxWireDOP]. Both front ends clamp after resolving, so the
// bound applies to whichever layer supplied the value.
func (o Options) Clamp() Options {
	if o.Priority != nil {
		p := *o.Priority
		if p > MaxWirePriority {
			p = MaxWirePriority
		}
		if p < -MaxWirePriority {
			p = -MaxWirePriority
		}
		o.Priority = &p
	}
	if o.DOP < 0 {
		o.DOP = 0
	}
	if cap := MaxWireDOP(); o.DOP > cap {
		o.DOP = cap
	}
	return o
}

// PriorityOr returns the resolved priority, or def when unset.
func (o Options) PriorityOr(def int) int {
	if o.Priority == nil {
		return def
	}
	return *o.Priority
}

// Apply writes the resolved knobs onto an engine QueryOptions (the
// option-carrying engine calls). NoCache ORs into NoResultCache.
func (o Options) Apply(qo *raven.QueryOptions) {
	qo.Tenant = o.Tenant
	qo.Priority = o.PriorityOr(0)
	if o.DOP > 0 {
		qo.Parallelism = o.DOP
	}
	qo.NoResultCache = qo.NoResultCache || o.NoCache
}

// Context tags ctx with the resolved admission identity (and, when
// NoCache is set, the result-cache bypass) — the carrier for engine
// calls that take no options (ExecContext, Stmt.QueryContext).
func (o Options) Context(ctx context.Context) context.Context {
	ctx = raven.ContextWithTenant(ctx, o.Tenant, o.PriorityOr(0))
	if o.NoCache {
		ctx = raven.ContextWithoutResultCache(ctx)
	}
	return ctx
}

// WithTimeout derives the request execution context: ctx bounded by the
// resolved timeout when one is set.
func (o Options) WithTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if o.Timeout > 0 {
		return context.WithTimeout(ctx, o.Timeout)
	}
	return context.WithCancel(ctx)
}

// HTTP header names of the ctx layer (a trusted fronting proxy tagging
// clients that cannot be trusted to tag themselves). Tenant and
// Priority are the original PR 5 headers; the rest complete the
// unified surface so every knob is reachable from every layer.
const (
	HeaderTenant    = "X-Raven-Tenant"
	HeaderPriority  = "X-Raven-Priority"
	HeaderDOP       = "X-Raven-DOP"
	HeaderTimeoutMS = "X-Raven-Timeout-Ms"
	HeaderNoCache   = "X-Raven-No-Cache"
)

// FromHeaders parses the X-Raven-* headers into the ctx layer. A
// malformed value is a client error, not silently a zero.
func FromHeaders(h http.Header) (Options, error) {
	var o Options
	o.Tenant = h.Get(HeaderTenant)
	if v := h.Get(HeaderPriority); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			return Options{}, fmt.Errorf("bad %s %q: not an integer", HeaderPriority, v)
		}
		o.Priority = &p
	}
	if v := h.Get(HeaderDOP); v != "" {
		d, err := strconv.Atoi(v)
		if err != nil || d < 0 {
			return Options{}, fmt.Errorf("bad %s %q: not a non-negative integer", HeaderDOP, v)
		}
		o.DOP = d
	}
	if v := h.Get(HeaderTimeoutMS); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			return Options{}, fmt.Errorf("bad %s %q: not a non-negative integer", HeaderTimeoutMS, v)
		}
		o.Timeout = time.Duration(ms) * time.Millisecond
	}
	if v := h.Get(HeaderNoCache); v != "" {
		b, err := parseWireBool(v)
		if err != nil {
			return Options{}, fmt.Errorf("bad %s %q: want a boolean", HeaderNoCache, v)
		}
		o.NoCache = b
	}
	return o, nil
}

// Session parameter keys of the pgwire ctx layer: a client passes them
// through the startup "options" parameter as -c key=value pairs
// (psql: PGOPTIONS="-c raven.priority=5"). Tenant has no key — it maps
// from the startup database/user parameters.
const (
	ParamPriority  = "raven.priority"
	ParamDOP       = "raven.dop"
	ParamTimeoutMS = "raven.timeout_ms"
	ParamNoCache   = "raven.no_cache"
)

// FromSessionParams parses pg startup -c key=value pairs (already split
// into a map) into one layer. Unknown raven.* keys error so typos fail
// the connection loudly instead of silently dropping the knob; foreign
// keys (application_name etc.) are ignored by the caller before this.
func FromSessionParams(kv map[string]string) (Options, error) {
	var o Options
	for k, v := range kv {
		switch k {
		case ParamPriority:
			p, err := strconv.Atoi(v)
			if err != nil {
				return Options{}, fmt.Errorf("bad %s %q: not an integer", k, v)
			}
			o.Priority = &p
		case ParamDOP:
			d, err := strconv.Atoi(v)
			if err != nil || d < 0 {
				return Options{}, fmt.Errorf("bad %s %q: not a non-negative integer", k, v)
			}
			o.DOP = d
		case ParamTimeoutMS:
			ms, err := strconv.ParseInt(v, 10, 64)
			if err != nil || ms < 0 {
				return Options{}, fmt.Errorf("bad %s %q: not a non-negative integer", k, v)
			}
			o.Timeout = time.Duration(ms) * time.Millisecond
		case ParamNoCache:
			b, err := parseWireBool(v)
			if err != nil {
				return Options{}, fmt.Errorf("bad %s %q: want a boolean", k, v)
			}
			o.NoCache = b
		default:
			if strings.HasPrefix(k, "raven.") {
				return Options{}, fmt.Errorf("unknown session parameter %s", k)
			}
		}
	}
	return o, nil
}

// parseWireBool accepts the spellings both HTTP clients and pg clients
// send: 1/0, true/false, on/off, t/f (case-insensitive).
func parseWireBool(v string) (bool, error) {
	switch strings.ToLower(v) {
	case "1", "true", "t", "on", "yes":
		return true, nil
	case "0", "false", "f", "off", "no":
		return false, nil
	}
	return false, fmt.Errorf("not a boolean: %q", v)
}

// MayHaveSelect classifies a SQL script: true routes it to the
// streaming query path, false to ExecContext. It is a cheap
// case-insensitive token scan, not a parse — the warm SELECT path must
// not pay a throwaway full parse per request. Every front end (HTTP,
// pgwire, the cluster router) classifies with this one scanner, so
// protocols never disagree about whether a script is a read (stream,
// route to one replica) or a pure side-effect script (ack, replicate
// to all). The one false positive — the word SELECT inside a string
// literal of a side-effect-only script — routes to the query path,
// which executes the side effects and then reports "Query needs a
// SELECT", exactly what the engine's ad-hoc surface does.
func MayHaveSelect(script string) bool {
	up := strings.ToUpper(script)
	for i := 0; ; {
		j := strings.Index(up[i:], "SELECT")
		if j < 0 {
			return false
		}
		k := i + j
		beforeOK := k == 0 || !isIdentByte(up[k-1])
		afterOK := k+6 >= len(up) || !isIdentByte(up[k+6])
		if beforeOK && afterOK {
			return true
		}
		i = k + 6
	}
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')
}
