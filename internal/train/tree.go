// Package train fits the models the paper's experiments need so the
// optimizer has realistic structure to exploit: CART decision trees and
// bagged forests (tree shape for pruning/inlining), L1-regularized
// logistic regression (weight sparsity for model-projection pushdown),
// k-means (model clustering), and a small SGD MLP (Fig 3). It also
// provides AUC, the metric the paper uses to pick models.
package train

import (
	"math"
	"math/rand"
	"sort"

	"raven/internal/ml"
)

// TreeOptions configures CART fitting.
type TreeOptions struct {
	MaxDepth int // maximum tree depth (default 8)
	MinLeaf  int // minimum samples per leaf (default 8)
	// Regression fits mean-value leaves with MSE splits; otherwise leaves
	// hold class-1 fractions and splits use gini impurity.
	Regression bool
	// MaxFeatures > 0 subsamples features per split (forests); 0 uses all.
	MaxFeatures int
	// Rng used for feature subsampling; nil means deterministic full scan.
	Rng *rand.Rand
}

func (o TreeOptions) withDefaults() TreeOptions {
	if o.MaxDepth == 0 {
		o.MaxDepth = 8
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 8
	}
	return o
}

// FitTree fits a CART decision tree on X with targets y (class labels 0/1
// or regression values).
func FitTree(x ml.Matrix, y []float64, opts TreeOptions) *ml.DecisionTree {
	opts = opts.withDefaults()
	b := &treeBuilder{x: x, y: y, opts: opts}
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	b.tree = &ml.DecisionTree{NFeat: x.Cols}
	b.build(idx, opts.MaxDepth)
	return b.tree
}

type treeBuilder struct {
	x    ml.Matrix
	y    []float64
	opts TreeOptions
	tree *ml.DecisionTree
}

func (b *treeBuilder) leafValue(idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += b.y[i]
	}
	return s / float64(len(idx))
}

// build appends the subtree over idx and returns its node ordinal.
func (b *treeBuilder) build(idx []int, depth int) int {
	val := b.leafValue(idx)
	if depth == 0 || len(idx) < 2*b.opts.MinLeaf || pure(b.y, idx) {
		return addLeaf(b.tree, val)
	}
	f, thr, ok := b.bestSplit(idx)
	if !ok {
		return addLeaf(b.tree, val)
	}
	var left, right []int
	for _, i := range idx {
		if b.x.At(i, f) <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.opts.MinLeaf || len(right) < b.opts.MinLeaf {
		return addLeaf(b.tree, val)
	}
	self := addSplit(b.tree, f, thr)
	l := b.build(left, depth-1)
	r := b.build(right, depth-1)
	b.tree.Left[self], b.tree.Right[self] = l, r
	return self
}

func pure(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}

// bestSplit scans candidate features for the impurity-minimizing threshold.
func (b *treeBuilder) bestSplit(idx []int) (feature int, threshold float64, ok bool) {
	feats := b.candidateFeatures()
	bestScore := math.Inf(1)
	type fv struct{ v, y float64 }
	buf := make([]fv, len(idx))
	for _, f := range feats {
		for k, i := range idx {
			buf[k] = fv{b.x.At(i, f), b.y[i]}
		}
		sort.Slice(buf, func(a, c int) bool { return buf[a].v < buf[c].v })
		// prefix sums for O(n) split evaluation
		n := len(buf)
		var sumL, sumL2 float64
		var sumR, sumR2 float64
		for _, e := range buf {
			sumR += e.y
			sumR2 += e.y * e.y
		}
		for k := 0; k < n-1; k++ {
			sumL += buf[k].y
			sumL2 += buf[k].y * buf[k].y
			sumR -= buf[k].y
			sumR2 -= buf[k].y * buf[k].y
			if buf[k].v == buf[k+1].v {
				continue
			}
			nl, nr := float64(k+1), float64(n-k-1)
			var score float64
			if b.opts.Regression {
				score = (sumL2 - sumL*sumL/nl) + (sumR2 - sumR*sumR/nr)
			} else {
				pl, pr := sumL/nl, sumR/nr
				score = nl*2*pl*(1-pl) + nr*2*pr*(1-pr)
			}
			if score < bestScore {
				bestScore = score
				feature = b.featAt(feats, f)
				threshold = (buf[k].v + buf[k+1].v) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

func (b *treeBuilder) featAt(_ []int, f int) int { return f }

func (b *treeBuilder) candidateFeatures() []int {
	d := b.x.Cols
	all := make([]int, d)
	for i := range all {
		all[i] = i
	}
	if b.opts.MaxFeatures <= 0 || b.opts.MaxFeatures >= d || b.opts.Rng == nil {
		return all
	}
	b.opts.Rng.Shuffle(d, func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:b.opts.MaxFeatures]
}

// addLeaf/addSplit mirror the unexported builders in package ml; trees are
// assembled through exported slices so training stays decoupled from ml.
func addLeaf(t *ml.DecisionTree, v float64) int {
	t.Feature = append(t.Feature, -1)
	t.Threshold = append(t.Threshold, 0)
	t.Left = append(t.Left, -1)
	t.Right = append(t.Right, -1)
	t.Value = append(t.Value, v)
	return len(t.Feature) - 1
}

func addSplit(t *ml.DecisionTree, f int, thr float64) int {
	t.Feature = append(t.Feature, f)
	t.Threshold = append(t.Threshold, thr)
	t.Left = append(t.Left, -1)
	t.Right = append(t.Right, -1)
	t.Value = append(t.Value, 0)
	return len(t.Feature) - 1
}

// ForestOptions configures bagged-forest fitting.
type ForestOptions struct {
	NumTrees int
	Tree     TreeOptions
	Seed     int64
}

// FitForest fits a bagged random forest: each tree sees a bootstrap sample
// and sqrt(d) candidate features per split.
func FitForest(x ml.Matrix, y []float64, opts ForestOptions) *ml.RandomForest {
	if opts.NumTrees == 0 {
		opts.NumTrees = 10
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	if opts.Tree.MaxFeatures == 0 {
		opts.Tree.MaxFeatures = int(math.Sqrt(float64(x.Cols))) + 1
	}
	f := &ml.RandomForest{}
	for t := 0; t < opts.NumTrees; t++ {
		bootIdx := make([]int, x.Rows)
		for i := range bootIdx {
			bootIdx[i] = rng.Intn(x.Rows)
		}
		bx := make([]float64, x.Rows*x.Cols)
		by := make([]float64, x.Rows)
		for i, src := range bootIdx {
			copy(bx[i*x.Cols:(i+1)*x.Cols], x.Row(src))
			by[i] = y[src]
		}
		topts := opts.Tree
		topts.Rng = rand.New(rand.NewSource(opts.Seed + int64(t) + 1))
		bm := ml.Matrix{Data: bx, Rows: x.Rows, Cols: x.Cols}
		f.Trees = append(f.Trees, FitTree(bm, by, topts))
	}
	return f
}
