package ort

import (
	"fmt"
	"runtime"
	"time"

	"raven/internal/tensor"
)

// Provider is an execution backend. CPU executes kernels directly; the GPU
// provider executes them on the CPU for correctness but *prices* them with
// an analytic device model (launch latency, compute throughput, memory
// bandwidth), reproducing the shape of hardware-accelerated scoring without
// hardware (see DESIGN.md §3, GPU substitution).
type Provider interface {
	Name() string
	// Threads is the intra-op parallelism granted to kernels.
	Threads() int
	// NodeTime converts one executed node into the provider's charged
	// duration. wall is the measured CPU execution time.
	NodeTime(op string, flops, bytes int64, wall time.Duration) time.Duration
}

// CPUProvider executes on the host with the given parallelism.
// Parallelism 0 means GOMAXPROCS; 1 forces sequential execution (used by
// the Fig 3 "forced sequential" ablation).
type CPUProvider struct{ Parallelism int }

// Name implements Provider.
func (c CPUProvider) Name() string { return "cpu" }

// Threads implements Provider.
func (c CPUProvider) Threads() int {
	if c.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Parallelism
}

// NodeTime implements Provider: charged time is measured time.
func (c CPUProvider) NodeTime(_ string, _, _ int64, wall time.Duration) time.Duration {
	return wall
}

// GPUProvider is the simulated accelerator. Defaults approximate an Nvidia
// K80 running f64 GEMM: ~1.4 TFLOP/s peak (we assume 50% efficiency),
// ~480 GB/s HBM, and ~5 µs kernel launch plus a fixed per-run transfer setup.
type GPUProvider struct {
	LaunchOverhead time.Duration // per kernel
	FLOPSPerSec    float64
	BytesPerSec    float64
	// TransferSetup is charged once per session run (PCIe staging).
	TransferSetup time.Duration
	// HostThreads is the CPU parallelism used to actually compute results.
	HostThreads int
}

// DefaultGPU returns the calibrated K80-like simulator used by benches.
func DefaultGPU() GPUProvider {
	return GPUProvider{
		LaunchOverhead: 5 * time.Microsecond,
		FLOPSPerSec:    0.7e12,
		BytesPerSec:    480e9,
		TransferSetup:  1500 * time.Microsecond,
		HostThreads:    0,
	}
}

// Name implements Provider.
func (g GPUProvider) Name() string { return "gpu-sim" }

// Threads implements Provider.
func (g GPUProvider) Threads() int {
	if g.HostThreads == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return g.HostThreads
}

// NodeTime implements Provider: a roofline model, launch + max(compute, memory).
func (g GPUProvider) NodeTime(_ string, flops, bytes int64, _ time.Duration) time.Duration {
	compute := time.Duration(float64(flops) / g.FLOPSPerSec * float64(time.Second))
	memory := time.Duration(float64(bytes) / g.BytesPerSec * float64(time.Second))
	t := compute
	if memory > t {
		t = memory
	}
	return g.LaunchOverhead + t
}

// RunStats reports per-run costs. Wall is host time actually spent;
// Charged is the provider-priced time (equal to Wall on CPU, modeled on the
// simulated GPU). NodesExecuted counts kernel launches.
type RunStats struct {
	Wall          time.Duration
	Charged       time.Duration
	NodesExecuted int
}

// Session is a compiled, validated graph ready for repeated Run calls —
// the unit that SQL Server caches per model in the paper (§5, obs. ii).
type Session struct {
	graph    *Graph
	provider Provider
	// order is the execution order (graph is stored topologically sorted).
	order []*Node
	// refcount[name] = number of consumers, used to free intermediates.
	refcount map[string]int
}

// SessionOptions configures compilation.
type SessionOptions struct {
	// Optimize runs the graph optimizer (constant folding, DCE, fusion)
	// before compiling. On by default via NewSession.
	Optimize bool
	Provider Provider
}

// NewSession compiles a graph with default options: graph optimizer on,
// CPU provider with full parallelism.
func NewSession(g *Graph) (*Session, error) {
	return NewSessionWithOptions(g, SessionOptions{Optimize: true, Provider: CPUProvider{}})
}

// NewSessionWithOptions compiles a graph with explicit options.
func NewSessionWithOptions(g *Graph, opts SessionOptions) (*Session, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.Optimize {
		var err error
		g, err = Optimize(g)
		if err != nil {
			return nil, err
		}
	}
	if opts.Provider == nil {
		opts.Provider = CPUProvider{}
	}
	for _, n := range g.Nodes {
		if !HasKernel(n.Op) {
			return nil, fmt.Errorf("ort: no kernel for op %q", n.Op)
		}
	}
	refs := make(map[string]int)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			refs[in]++
		}
	}
	for _, out := range g.Outputs {
		refs[out]++
	}
	return &Session{graph: g, provider: opts.Provider, order: g.Nodes, refcount: refs}, nil
}

// Graph returns the (optimized) graph backing the session.
func (s *Session) Graph() *Graph { return s.graph }

// Provider returns the session's execution provider.
func (s *Session) Provider() Provider { return s.provider }

// Run executes the graph on the given feeds and returns the output tensors
// keyed by name, plus run statistics.
func (s *Session) Run(feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, RunStats, error) {
	var stats RunStats
	start := time.Now()
	env := make(map[string]*tensor.Tensor, len(s.graph.Initializers)+len(feeds)+len(s.order))
	for k, v := range s.graph.Initializers {
		env[k] = v
	}
	for _, in := range s.graph.Inputs {
		t, ok := feeds[in]
		if !ok {
			return nil, stats, fmt.Errorf("ort: missing feed for input %q", in)
		}
		env[in] = t
	}
	live := make(map[string]int, len(s.refcount))
	for k, v := range s.refcount {
		live[k] = v
	}
	threads := s.provider.Threads()
	var charged time.Duration
	stats.Charged = 0
	if gp, ok := s.provider.(GPUProvider); ok {
		charged += gp.TransferSetup
	}
	for _, n := range s.order {
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for i, name := range n.Inputs {
			t, ok := env[name]
			if !ok {
				return nil, stats, fmt.Errorf("ort: node %s: input %q not materialized", n.Name, name)
			}
			ins[i] = t
		}
		k := kernels[n.Op]
		nodeStart := time.Now()
		outs, err := k(ins, n.Attrs, threads)
		if err != nil {
			return nil, stats, fmt.Errorf("ort: node %s (%s): %w", n.Name, n.Op, err)
		}
		nodeWall := time.Since(nodeStart)
		if len(outs) != len(n.Outputs) {
			return nil, stats, fmt.Errorf("ort: node %s produced %d outputs, declared %d", n.Name, len(outs), len(n.Outputs))
		}
		charged += s.provider.NodeTime(n.Op, opFLOPs(n.Op, ins), opBytes(ins, outs), nodeWall)
		stats.NodesExecuted++
		for i, name := range n.Outputs {
			env[name] = outs[i]
		}
		// Release intermediates that have no remaining consumers so large
		// batch runs do not hold every layer alive.
		for _, name := range n.Inputs {
			if _, isInit := s.graph.Initializers[name]; isInit {
				continue
			}
			live[name]--
			if live[name] == 0 {
				delete(env, name)
			}
		}
	}
	out := make(map[string]*tensor.Tensor, len(s.graph.Outputs))
	for _, name := range s.graph.Outputs {
		t, ok := env[name]
		if !ok {
			return nil, stats, fmt.Errorf("ort: output %q not produced", name)
		}
		out[name] = t
	}
	stats.Wall = time.Since(start)
	stats.Charged = charged
	return out, stats, nil
}
