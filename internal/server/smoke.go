package server

import (
	"fmt"
)

// smokePredict is the demo PREDICT statement the smoke runs against the
// preloaded hospital workload (see cmd/ravenserved's -preload).
const smokePredict = `SELECT d.id, p.score FROM PREDICT(MODEL='duration_of_stay',
	DATA=(SELECT * FROM patient_info AS pi
	      JOIN blood_tests AS bt ON pi.id = bt.id
	      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
	WITH (score FLOAT) AS p WHERE d.age > @minage`

// Smoke drives one end-to-end pass over the wire protocol against a
// ravenserved instance preloaded with the demo workload: DDL + INSERT
// through /query, a SELECT readback, a parameterized PREDICT, the
// prepared-statement warm path, and /stats. It is the body of
// `ravenserved -selftest` and the `make smoke-serve` CI gate.
func Smoke(base string) error {
	c := &Client{Base: base}

	if status, err := c.Healthz(); err != nil || status != "ok" {
		return fmt.Errorf("healthz: status %q, err %v", status, err)
	}

	// DDL + DML through the wire (side-effect-only script).
	if res, err := c.Query(QueryRequest{SQL: `
		CREATE TABLE smoke_kv (k INT PRIMARY KEY, v FLOAT);
		INSERT INTO smoke_kv VALUES (1, 1.5), (2, 2.5), (3, 3.5);`,
	}); err != nil || !res.OK {
		return fmt.Errorf("ddl script: res %+v, err %v", res, err)
	}

	// SELECT readback streams the inserted rows.
	sel, err := c.Query(QueryRequest{SQL: `SELECT k, v FROM smoke_kv WHERE v > 2.0`})
	if err != nil {
		return fmt.Errorf("select: %w", err)
	}
	if len(sel.Rows) != 2 || len(sel.Columns) != 2 {
		return fmt.Errorf("select: got %d rows %v cols, want 2 rows [k v]", len(sel.Rows), sel.Columns)
	}

	// Parameterized ad-hoc PREDICT over the preloaded hospital tables.
	adhoc, err := c.Query(QueryRequest{SQL: smokePredict, Params: map[string]string{"minage": "50"}})
	if err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	if len(adhoc.Rows) == 0 {
		return fmt.Errorf("predict returned no rows")
	}

	// Prepared warm path: same statement, identical stream.
	pr, err := c.Prepare(QueryRequest{SQL: smokePredict})
	if err != nil {
		return fmt.Errorf("prepare: %w", err)
	}
	if len(pr.Params) != 1 || pr.Params[0] != "minage" {
		return fmt.Errorf("prepare: params = %v, want [minage]", pr.Params)
	}
	prep, err := c.StmtQuery(pr.ID, QueryRequest{Params: map[string]string{"minage": "50"}})
	if err != nil {
		return fmt.Errorf("stmt query: %w", err)
	}
	if prep.Fingerprint() != adhoc.Fingerprint() {
		return fmt.Errorf("prepared result differs from ad-hoc result")
	}

	// Tenant-tagged query: the tag must round-trip into per-tenant stats.
	if _, err := c.Query(QueryRequest{SQL: `SELECT k FROM smoke_kv`, Tenant: "smoke-tenant", Priority: IntPtr(2)}); err != nil {
		return fmt.Errorf("tenant-tagged query: %w", err)
	}

	st, err := c.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if st.Server.Queries < 3 || st.Engine.Compiles == 0 {
		return fmt.Errorf("stats implausible: %+v", st)
	}
	if st.Engine.Scheduler != nil {
		if st.Engine.Scheduler.Admitted == 0 {
			return fmt.Errorf("scheduler enabled but admitted nothing: %+v", st.Engine.Scheduler)
		}
		if ts := st.Engine.Scheduler.Tenants["smoke-tenant"]; ts.Admitted == 0 {
			return fmt.Errorf("tenant tag did not reach the scheduler: %+v", st.Engine.Scheduler.Tenants)
		}
	}

	if err := c.CloseStmt(pr.ID); err != nil {
		return fmt.Errorf("close stmt: %w", err)
	}
	return nil
}
