package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"raven/internal/server"
)

// entryKind is what a replication-log entry carries.
type entryKind int

const (
	entryScript entryKind = iota // a side-effect-only SQL script
	entryModel                   // a serialized model pipeline
)

// logEntry is one replicated side effect. The log is append-only and
// ordered; every member tracks the highest seq it has applied this
// process lifetime, so fan-out and repair are the same operation:
// replay appliedSeq+1..head.
type logEntry struct {
	seq    uint64
	kind   entryKind
	sql    string // entryScript
	name   string // entryModel
	data   []byte // entryModel: gob-encoded pipeline
	tenant string // admission identity the side effect bills to
}

func (e *logEntry) describe() string {
	if e.kind == entryModel {
		return fmt.Sprintf("model %q", e.name)
	}
	s := strings.TrimSpace(e.sql)
	if len(s) > 40 {
		s = s[:40] + "..."
	}
	return fmt.Sprintf("script %q", s)
}

// appendEntry assigns the next seq under the router lock and returns
// the entry.
func (rt *Router) appendEntry(e logEntry) *logEntry {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.logSeq++
	e.seq = rt.logSeq
	rt.log = append(rt.log, e)
	return &rt.log[len(rt.log)-1]
}

// logHead returns the seq of the newest entry (0 = empty log).
func (rt *Router) logHead() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.logSeq
}

// entriesAfter returns the log tail with seq > after.
func (rt *Router) entriesAfter(after uint64) []logEntry {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	// The log is never truncated, so entry seqs are 1..len(log) and the
	// tail after `after` starts at index `after`.
	if int(after) >= len(rt.log) {
		return nil
	}
	tail := make([]logEntry, len(rt.log)-int(after))
	copy(tail, rt.log[after:])
	return tail
}

// replicate appends a side effect to the log and fans it out to every
// registered member. It succeeds if at least one member applied the
// entry and no *healthy* member failed; members that fail are marked
// degraded (the reconciler replays the log to them before they take
// traffic again), so a replica being down does not block DDL for the
// rest of the cluster — it just has catching up to do.
func (rt *Router) replicate(ctx context.Context, e logEntry) error {
	entry := rt.appendEntry(e)
	members := rt.snapshotMembers()
	if len(members) == 0 {
		return errors.New("no replicas registered")
	}

	type result struct {
		m   *member
		err error
	}
	results := make(chan result, len(members))
	for _, m := range members {
		go func(m *member) {
			results <- result{m, rt.syncMember(ctx, m)}
		}(m)
	}
	applied := 0
	var failed []string
	for range members {
		r := <-results
		if r.err == nil {
			applied++
			continue
		}
		// Down members were already not routable; reachable ones that
		// failed to apply must stop taking traffic until repaired.
		if r.m.getState() == StateHealthy {
			r.m.setState(StateDegraded)
		}
		failed = append(failed, fmt.Sprintf("%s: %v", r.m.name, r.err))
	}
	if applied == 0 {
		return fmt.Errorf("replicating %s failed on all %d replicas: %s",
			entry.describe(), len(members), strings.Join(failed, "; "))
	}
	return nil
}

// syncMember replays the log tail this member has not applied yet, in
// order, and reads back the catalog version. applyMu makes it safe to
// call concurrently from the fan-out path and the reconciler: whoever
// gets there first applies the entries, the other finds appliedSeq
// already at head and just re-reads the version.
func (rt *Router) syncMember(ctx context.Context, m *member) error {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()

	for _, e := range rt.entriesAfter(m.appliedSeq) {
		var err error
		switch e.kind {
		case entryScript:
			err = rt.opts.Retry.Do(ctx, server.Transient, func() error {
				res, qerr := m.c.QueryContext(ctx, server.QueryRequest{SQL: e.sql, Tenant: e.tenant})
				if qerr != nil {
					return qerr
				}
				if !res.OK {
					return fmt.Errorf("side-effect script streamed %d rows", len(res.Rows))
				}
				return nil
			})
		case entryModel:
			err = rt.opts.Retry.Do(ctx, server.Transient, func() error {
				return m.c.StoreModel(ctx, server.ModelRequest{Name: e.name, Data: e.data, Tenant: e.tenant})
			})
		}
		if err != nil {
			return fmt.Errorf("apply entry %d (%s): %w", e.seq, e.describe(), err)
		}
		m.appliedSeq = e.seq
	}

	// Catalog-version read-back: record what "fully applied" looks like
	// on this replica, so the next probe can tell a restart (version
	// regression) from normal operation.
	v, err := m.c.CatalogVersion(ctx)
	if err != nil {
		return fmt.Errorf("version read-back: %w", err)
	}
	m.lastVersion = v
	return nil
}
