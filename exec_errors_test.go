package raven

import (
	"strings"
	"testing"
)

// TestInsertLiteralTypeMismatches pins down literalValue's error behavior
// for every mismatched (literal, column type) combination.
func TestInsertLiteralTypeMismatches(t *testing.T) {
	db := MustOpen()
	if err := db.Exec(`CREATE TABLE typed (i INT, f FLOAT, s VARCHAR(8), b BIT)`); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		label, insert, wantErr string
	}{
		{"string into INT", `INSERT INTO typed VALUES ('x', 1.0, 'ok', TRUE)`, "string value"},
		{"string into FLOAT", `INSERT INTO typed VALUES (1, 'x', 'ok', TRUE)`, "string value"},
		{"bool into INT", `INSERT INTO typed VALUES (TRUE, 1.0, 'ok', TRUE)`, "bool value"},
		{"bool into FLOAT", `INSERT INTO typed VALUES (1, FALSE, 'ok', TRUE)`, "bool value"},
		{"number into VARCHAR", `INSERT INTO typed VALUES (1, 1.0, 2.5, TRUE)`, "numeric value"},
		{"string into BIT", `INSERT INTO typed VALUES (1, 1.0, 'ok', 'yes')`, "string value"},
	}
	for _, tc := range cases {
		err := db.Exec(tc.insert)
		if err == nil {
			t.Errorf("%s: insert succeeded, want error", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.label, err, tc.wantErr)
		}
		// Error messages name the table and column for debuggability.
		if !strings.Contains(err.Error(), "typed") {
			t.Errorf("%s: error %q does not name the table", tc.label, err)
		}
	}
	// Numeric coercions that are allowed: int into FLOAT, float into INT
	// (truncating), numeric into BIT.
	if err := db.Exec(`INSERT INTO typed VALUES (2.9, 3, 'ok', 1)`); err != nil {
		t.Fatalf("valid coercing insert failed: %v", err)
	}
	out, err := db.QuerySQLOnly(`SELECT i, f, b FROM typed`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Col("i").Ints[0] != 2 || out.Col("f").Floats[0] != 3.0 || !out.Col("b").Bools[0] {
		t.Errorf("coercions wrong: %v", out)
	}
	// No mismatched row may have been half-applied.
	if n := out.Len(); n != 1 {
		t.Errorf("table has %d rows after failed inserts, want 1", n)
	}
}

func TestInsertArityMismatch(t *testing.T) {
	db := MustOpen()
	if err := db.Exec(`CREATE TABLE two (a INT, b INT)`); err != nil {
		t.Fatal(err)
	}
	for _, ins := range []string{
		`INSERT INTO two VALUES (1)`,
		`INSERT INTO two VALUES (1, 2, 3)`,
	} {
		err := db.Exec(ins)
		if err == nil {
			t.Errorf("%s: want arity error", ins)
			continue
		}
		if !strings.Contains(err.Error(), "columns") {
			t.Errorf("%s: unhelpful arity error %q", ins, err)
		}
	}
	// A multi-row insert failing on a later row must not apply the earlier
	// rows of the same statement half-way and then error confusingly:
	// current semantics are row-at-a-time, so the valid first row lands.
	err := db.Exec(`INSERT INTO two VALUES (1, 2), (3, 'x')`)
	if err == nil {
		t.Fatal("mixed-validity insert should fail")
	}
	out, err := db.QuerySQLOnly(`SELECT a FROM two`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Errorf("expected exactly the valid row to land, got %d rows", out.Len())
	}
}

// TestExecScriptFailsMidway documents multi-statement script semantics:
// statements execute in order, the first failure stops the script, and
// earlier statements' effects persist (no script-level rollback).
func TestExecScriptFailsMidway(t *testing.T) {
	db := MustOpen()
	err := db.Exec(`CREATE TABLE kept (a INT);
		INSERT INTO kept VALUES (7);
		INSERT INTO kept VALUES ('boom');
		CREATE TABLE never (b INT)`)
	if err == nil {
		t.Fatal("script with a bad insert should fail")
	}
	if !strings.Contains(err.Error(), "kept") {
		t.Errorf("error %q does not name the failing table", err)
	}
	// Earlier statements applied...
	out, qerr := db.QuerySQLOnly(`SELECT a FROM kept`)
	if qerr != nil || out.Len() != 1 || out.Col("a").Ints[0] != 7 {
		t.Errorf("statements before the failure should persist: %v %v", out, qerr)
	}
	// ...later ones never ran.
	if _, err := db.Catalog().Table("never"); err == nil {
		t.Error("statements after the failure must not run")
	}
	// Same mid-script stop inside a Query call's side-effecting prefix.
	_, err = db.Query(`CREATE TABLE q1 (x INT); INSERT INTO q1 VALUES ('bad'); SELECT x FROM q1`)
	if err == nil {
		t.Fatal("Query script with failing insert should fail")
	}
	if _, err := db.Catalog().Table("q1"); err != nil {
		t.Error("CREATE before the failing INSERT should persist")
	}
}

// TestExecUnsupportedAndMissing covers the remaining Exec error paths.
func TestExecUnsupportedAndMissing(t *testing.T) {
	db := MustOpen()
	if err := db.Exec(`INSERT INTO ghost VALUES (1)`); err == nil {
		t.Error("insert into missing table should fail")
	}
	if err := db.Exec(`DROP TABLE ghost`); err == nil {
		t.Error("dropping a missing table should fail")
	}
	if err := db.Exec(`CREATE TABLE dup (a INT)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`CREATE TABLE dup (a INT)`); err == nil {
		t.Error("duplicate CREATE TABLE should fail")
	}
}
