package bench

import (
	"fmt"
	"runtime"

	"raven"
	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/train"
)

// ParallelScaling measures the morsel-parallel scan+PREDICT pipeline
// against the serial plan at increasing degrees of parallelism — the
// engine-side counterpart of the paper's §5 observation (iii) that SQL
// Server auto-parallelizes scan and PREDICT for a ~5× gain at 1M–10M
// rows. Speedups only materialize with GOMAXPROCS > 1; the run records
// the host's core count so single-core results are not misread.
func ParallelScaling(cfg Config) (*Table, error) {
	procs := runtime.GOMAXPROCS(0)
	t := &Table{
		ID:         "ParallelScaling",
		Title:      "morsel-parallel scan+PREDICT vs serial (random forest, flights)",
		PaperShape: "~5x from auto-parallel scan+PREDICT at 1M-10M rows (§5 obs iii)",
	}
	rows, feat, trees, depth := 400000, 30, 16, 8
	if cfg.Quick {
		rows, trees, depth = 100000, 8, 6
	}
	db := cfg.open()
	fl, err := data.GenFlightsWide(db.Catalog(), rows, feat, feat/3, 4000, 17)
	if err != nil {
		return nil, err
	}
	rf := train.FitForest(fl.TrainX, fl.TrainY, train.ForestOptions{
		NumTrees: trees,
		Seed:     5,
		Tree:     train.TreeOptions{MaxDepth: depth, MinLeaf: 10},
	})
	if err := db.StoreModel("delay_rf", &ml.Pipeline{Final: rf, InputColumns: fl.FeatureCols}); err != nil {
		return nil, err
	}
	q := `SELECT p.prob FROM PREDICT(MODEL='delay_rf', DATA=flights_features AS d) WITH (prob FLOAT) AS p`
	param := FmtRows(rows)

	run := func(dop int) error {
		_, err := db.QueryWithOptions(q, raven.QueryOptions{
			CrossOptimize: false,
			Mode:          raven.ModeInProcess,
			Parallelism:   dop,
		})
		return err
	}
	serial, err := Time(cfg.Warm, cfg.Runs, func() error { return run(1) })
	if err != nil {
		return nil, err
	}
	t.Add("serial (DOP=1)", param, serial, "")
	if !raceBuild {
		apr, err := MeasureAllocsPerRow(rows, func() error { return run(1) })
		if err != nil {
			return nil, err
		}
		t.Rows[len(t.Rows)-1].AllocsPerRow = apr
		if cfg.Quick && apr > scalingAllocsPerRowBudget {
			return nil, fmt.Errorf("ParallelScaling: %.4f allocs/row at DOP=1 exceeds the %.4f budget (pre-typed-kernel baseline %.4f)",
				apr, scalingAllocsPerRowBudget, scalingAllocsPerRowBaseline)
		}
	}

	dops := []int{2, 4}
	if procs > 4 {
		dops = append(dops, procs)
	}
	best := serial
	for _, dop := range dops {
		d, err := Time(cfg.Warm, cfg.Runs, func() error { return run(dop) })
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("morsel (DOP=%d)", dop), param, d, "")
		if d < best {
			best = d
		}
	}
	t.Rows[0].Note = fmt.Sprintf("best speedup %.2fx over serial; host GOMAXPROCS=%d (DOP>cores cannot speed up)",
		float64(serial.Microseconds())/float64(best.Microseconds()), procs)
	return t, nil
}
