package xopt

import (
	"fmt"
	"math"
	"sort"

	"raven/internal/ml"
	"raven/internal/train"
)

// ClusteredModel implements the paper's model clustering (§4.1): k-means
// partitions the data offline; for each cluster, features that are
// (near-)constant within the cluster are folded into a specialized,
// narrower model. At scoring time each row is routed to its cluster's
// precompiled model; rows whose cluster has no precompiled model fall back
// to the original. Routing uses only the few features that best separate
// the centroids, so the router costs O(k·r) per row with r « d — otherwise
// routing would eat the savings the narrower models buy.
type ClusteredModel struct {
	KM       *train.KMeans
	Fallback *ml.LogisticRegression
	// Per cluster: the specialized model and the feature ordinals it still
	// reads (indexed directly from the full-width row).
	Models []*ml.LogisticRegression
	Kept   [][]int
	// RouteFeats are the feature ordinals used for nearest-centroid
	// routing (chosen by between-centroid variance at build time).
	RouteFeats []int
}

// BuildClusteredModel fits k-means on a sample and precompiles one
// specialized model per cluster. eps bounds the within-cluster spread a
// feature may have to be treated as constant.
func BuildClusteredModel(lr *ml.LogisticRegression, sample ml.Matrix, k int, eps float64, seed int64) (*ClusteredModel, error) {
	if sample.Cols != len(lr.W) {
		return nil, fmt.Errorf("xopt: sample width %d != model features %d", sample.Cols, len(lr.W))
	}
	km := train.FitKMeans(sample, train.KMeansOptions{K: k, Seed: seed})
	assign := km.Assign(sample)
	cm := &ClusteredModel{KM: km, Fallback: lr, Models: make([]*ml.LogisticRegression, km.K()), Kept: make([][]int, km.K())}
	for c := 0; c < km.K(); c++ {
		consts := km.ConstantFeatures(sample, assign, c, eps)
		spec, kept := lr.PinFeatures(consts)
		cm.Models[c] = spec
		cm.Kept[c] = kept
	}
	cm.RouteFeats = routingFeatures(km, 3)
	return cm, nil
}

// routingFeatures picks the r features with the largest spread across
// centroids — enough to discriminate clusters at a fraction of a full
// d-dimensional distance computation.
func routingFeatures(km *train.KMeans, r int) []int {
	k, d := km.Centroids.Rows, km.Centroids.Cols
	if k <= 1 || d == 0 {
		return nil
	}
	type fv struct {
		f int
		v float64
	}
	spread := make([]fv, d)
	for j := 0; j < d; j++ {
		mean := 0.0
		for c := 0; c < k; c++ {
			mean += km.Centroids.At(c, j)
		}
		mean /= float64(k)
		v := 0.0
		for c := 0; c < k; c++ {
			dv := km.Centroids.At(c, j) - mean
			v += dv * dv
		}
		spread[j] = fv{j, v}
	}
	sort.Slice(spread, func(a, b int) bool { return spread[a].v > spread[b].v })
	if r > d {
		r = d
	}
	out := make([]int, r)
	for i := 0; i < r; i++ {
		out[i] = spread[i].f
	}
	sort.Ints(out)
	return out
}

// route returns the nearest centroid using only the routing features.
func (c *ClusteredModel) route(row []float64) int {
	k := c.KM.Centroids.Rows
	d := c.KM.Centroids.Cols
	feats := c.RouteFeats
	if len(feats) == 0 {
		return c.KM.AssignOne(row)
	}
	best, bd := 0, 0.0
	for cl := 0; cl < k; cl++ {
		cent := c.KM.Centroids.Data[cl*d : (cl+1)*d]
		s := 0.0
		for _, f := range feats {
			dv := row[f] - cent[f]
			s += dv * dv
		}
		if cl == 0 || s < bd {
			best, bd = cl, s
		}
	}
	return best
}

// NumFeatures implements ml.Model.
func (c *ClusteredModel) NumFeatures() int { return len(c.Fallback.W) }

// Kind implements ml.Model.
func (c *ClusteredModel) Kind() string { return "clustered-logreg" }

// UsedFeatures implements ml.Model: union across cluster models plus the
// clustering features themselves (all of them — routing reads the row).
func (c *ClusteredModel) UsedFeatures() []int {
	out := make([]int, len(c.Fallback.W))
	for i := range out {
		out[i] = i
	}
	return out
}

// Predict implements ml.Model: each row routes to its cluster's
// specialized model and is scored in place over the kept feature indices
// (no sub-matrix materialization).
func (c *ClusteredModel) Predict(in ml.Matrix) ([]float64, error) {
	if in.Cols != c.NumFeatures() {
		return nil, fmt.Errorf("xopt: clustered model expects %d features, got %d", c.NumFeatures(), in.Cols)
	}
	out := make([]float64, in.Rows)
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		cl := c.route(row)
		if cl >= len(c.Models) || c.Models[cl] == nil {
			z := c.Fallback.B
			for j, w := range c.Fallback.W {
				z += w * row[j]
			}
			out[i] = 1 / (1 + math.Exp(-z))
			continue
		}
		m := c.Models[cl]
		kept := c.Kept[cl]
		z := m.B
		for j, w := range m.W {
			z += w * row[kept[j]]
		}
		out[i] = 1 / (1 + math.Exp(-z))
	}
	return out, nil
}

// AvgKeptFeatures reports the mean specialized-model width — the quantity
// that shrinks with more clusters and drives Fig 2(b)'s gains.
func (c *ClusteredModel) AvgKeptFeatures() float64 {
	if len(c.Kept) == 0 {
		return float64(c.NumFeatures())
	}
	total := 0
	for _, k := range c.Kept {
		total += len(k)
	}
	return float64(total) / float64(len(c.Kept))
}

// ClusteredEncodedModel is model clustering for the common
// one-hot-encode + logistic-regression pipeline, the flight-delay shape of
// Fig 2(b). Specialization happens in *raw* space: categorical columns that
// are constant within a cluster contribute a fixed weight folded into the
// cluster model's bias, so the specialized scorer neither encodes nor
// multiplies them. Non-constant categorical columns score through a
// category→weight lookup, skipping indicator materialization entirely —
// the precompiled form of "dropping features from the model".
type ClusteredEncodedModel struct {
	Enc      *ml.OneHotEncoder
	Fallback *ml.LogisticRegression // over the encoded space
	KM       *train.KMeans          // over the raw space
	// RouteFeats: raw feature ordinals used for centroid routing (the
	// fallback when RouteMap misses).
	RouteFeats []int
	// RouteCol/RouteMap: O(1) routing on the strongest clustering column —
	// rows are assigned by the value of that column, precomputed from the
	// sample (the practical "which precompiled model applies" lookup).
	RouteCol int
	RouteMap map[float64]int
	Specs    []EncSpec
	// catIndex[ci] maps a raw category value to its ordinal within
	// Enc.Categories[ci].
	catIndex []map[float64]int
}

// EncSpec is one cluster's precompiled scorer.
type EncSpec struct {
	Bias float64
	// PassCols/PassW: non-constant passthrough (numeric) columns.
	PassCols []int
	PassW    []float64
	// CatCols: non-constant categorical columns (index into Enc.Cols);
	// CatW[i][k] is the weight of category k of that column.
	CatCols []int
	CatW    [][]float64
}

// BuildClusteredEncodedModel clusters a raw-space sample and precompiles a
// specialized scorer per cluster.
func BuildClusteredEncodedModel(enc *ml.OneHotEncoder, lr *ml.LogisticRegression, rawSample ml.Matrix, k int, eps float64, seed int64) (*ClusteredEncodedModel, error) {
	inDim := enc.InputDim
	if inDim == 0 {
		inDim = rawSample.Cols
	}
	if rawSample.Cols != inDim {
		return nil, fmt.Errorf("xopt: raw sample width %d != encoder input %d", rawSample.Cols, inDim)
	}
	if d, err := enc.OutputDim(inDim); err != nil || d != len(lr.W) {
		return nil, fmt.Errorf("xopt: encoder output width does not match model (%v)", err)
	}
	km := train.FitKMeans(rawSample, train.KMeansOptions{K: k, Seed: seed})
	assign := km.Assign(rawSample)
	cm := &ClusteredEncodedModel{Enc: enc, Fallback: lr, KM: km, RouteFeats: routingFeatures(km, 3)}
	// Value-based routing: pick the single strongest routing feature and
	// learn value -> cluster from the sample (majority vote).
	if len(cm.RouteFeats) > 0 {
		best := cm.RouteFeats[0]
		bestSpread := -1.0
		for _, f := range cm.RouteFeats {
			mean, v := 0.0, 0.0
			for c := 0; c < km.K(); c++ {
				mean += km.Centroids.At(c, f)
			}
			mean /= float64(km.K())
			for c := 0; c < km.K(); c++ {
				dv := km.Centroids.At(c, f) - mean
				v += dv * dv
			}
			if v > bestSpread {
				best, bestSpread = f, v
			}
		}
		cm.RouteCol = best
		counts := make(map[float64]map[int]int)
		for i := 0; i < rawSample.Rows; i++ {
			v := rawSample.At(i, best)
			if counts[v] == nil {
				counts[v] = make(map[int]int)
			}
			counts[v][assign[i]]++
		}
		if len(counts) <= 4096 { // value-routable column
			cm.RouteMap = make(map[float64]int, len(counts))
			for v, byCluster := range counts {
				bc, bn := 0, -1
				for c, n := range byCluster {
					if n > bn {
						bc, bn = c, n
					}
				}
				cm.RouteMap[v] = bc
			}
		}
	}
	cm.catIndex = make([]map[float64]int, len(enc.Cols))
	for ci, cats := range enc.Categories {
		m := make(map[float64]int, len(cats))
		for j, v := range cats {
			m[v] = j
		}
		cm.catIndex[ci] = m
	}
	isCat := make(map[int]int, len(enc.Cols)) // raw col -> ci
	for ci, c := range enc.Cols {
		isCat[c] = ci
	}
	for c := 0; c < km.K(); c++ {
		consts := km.ConstantFeatures(rawSample, assign, c, eps)
		spec := EncSpec{Bias: lr.B}
		for raw := 0; raw < inDim; raw++ {
			if ci, ok := isCat[raw]; ok {
				lo, _, err := enc.IndicatorRange(inDim, raw)
				if err != nil {
					return nil, err
				}
				if v, constant := consts[raw]; constant {
					// fold the lit indicator's weight into the bias
					if j, known := cm.catIndex[ci][v]; known {
						spec.Bias += lr.W[lo+j]
					}
					continue
				}
				w := make([]float64, len(enc.Categories[ci]))
				copy(w, lr.W[lo:lo+len(w)])
				spec.CatCols = append(spec.CatCols, ci)
				spec.CatW = append(spec.CatW, w)
				continue
			}
			out, err := enc.PassthroughOutputIndex(raw)
			if err != nil {
				return nil, err
			}
			if v, constant := consts[raw]; constant {
				spec.Bias += lr.W[out] * v
				continue
			}
			spec.PassCols = append(spec.PassCols, raw)
			spec.PassW = append(spec.PassW, lr.W[out])
		}
		cm.Specs = append(cm.Specs, spec)
	}
	return cm, nil
}

// K returns the cluster count.
func (c *ClusteredEncodedModel) K() int { return c.KM.K() }

// AvgActiveTerms reports the mean number of per-row scoring terms across
// cluster scorers (numeric madds + categorical lookups) — the cost driver.
func (c *ClusteredEncodedModel) AvgActiveTerms() float64 {
	if len(c.Specs) == 0 {
		return 0
	}
	total := 0
	for _, s := range c.Specs {
		total += len(s.PassCols) + len(s.CatCols)
	}
	return float64(total) / float64(len(c.Specs))
}

// Predict scores raw rows: route, then evaluate the cluster's precompiled
// scorer (numeric madds + one weight lookup per live categorical column).
func (c *ClusteredEncodedModel) Predict(raw ml.Matrix) ([]float64, error) {
	inDim := c.Enc.InputDim
	if inDim == 0 {
		inDim = raw.Cols
	}
	if raw.Cols != inDim {
		return nil, fmt.Errorf("xopt: clustered-encoded model expects %d raw columns, got %d", inDim, raw.Cols)
	}
	out := make([]float64, raw.Rows)
	k := c.KM.Centroids.Rows
	d := c.KM.Centroids.Cols
	for i := 0; i < raw.Rows; i++ {
		row := raw.Row(i)
		best, routed := -1, false
		if c.RouteMap != nil {
			if cl, ok := c.RouteMap[row[c.RouteCol]]; ok {
				best, routed = cl, true
			}
		}
		if !routed {
			bd := 0.0
			for cl := 0; cl < k; cl++ {
				cent := c.KM.Centroids.Data[cl*d : (cl+1)*d]
				s := 0.0
				for _, f := range c.RouteFeats {
					dv := row[f] - cent[f]
					s += dv * dv
				}
				if cl == 0 || s < bd {
					best, bd = cl, s
				}
			}
		}
		spec := &c.Specs[best]
		z := spec.Bias
		for j, col := range spec.PassCols {
			z += spec.PassW[j] * row[col]
		}
		for j, ci := range spec.CatCols {
			if idx, ok := c.catIndex[ci][row[c.Enc.Cols[ci]]]; ok {
				z += spec.CatW[j][idx]
			}
		}
		out[i] = 1 / (1 + math.Exp(-z))
	}
	return out, nil
}
