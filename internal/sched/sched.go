// Package sched is the admission-controlled query scheduler behind the
// serving front end. It bounds how much of the engine a burst of
// concurrent queries can claim: each query is admitted with a weighted
// cost — its effective degree of parallelism, i.e. the number of
// morsel-exchange worker slots it may occupy — against a budget of
// concurrent queries and total worker slots. Queries that do not fit wait
// in a bounded queue with per-query timeouts and context cancellation;
// queries that cannot even queue are rejected immediately, giving clients
// a clean load-shedding signal instead of a collapsing server.
//
// # Tenants and priorities
//
// The scheduler is multi-tenant: every admission carries a (tenant,
// priority) Tag. Tenants may be declared with their own budget
// (TenantQuota: max concurrent queries and max worker slots), which is
// enforced in addition to the global budget; undeclared tenants share
// the global budget and are still tracked for stats. The wait queue is a
// priority queue with weighted fair ordering: higher priority first,
// FIFO (arrival order) within a priority class, and a starvation guard
// that ages waiting entries — a waiter gains one effective priority
// level per AgeStep spent queued — so a saturating high-priority tenant
// cannot lock lower-priority tenants out forever. A waiter blocked only
// by its own tenant's budget is skipped by other tenants' admissions —
// a saturated tenant never holds global capacity hostage — but not by
// its own tenant-mates, so a tenant's cheap queries cannot starve its
// expensive ones; a waiter blocked by the global budget stops the scan
// entirely (expensive queries are not starved by cheaper ones arriving
// behind them).
//
// The scheduler is deliberately engine-agnostic: it hands out admission
// tickets (release functions), never goroutines, so raven.DB can gate
// Query/Stmt.Query with one Acquire call and release on Rows.Close.
package sched

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// Admission failure modes. Servers map these to distinct status codes
// (rejected ≠ timed out), so they are sentinel errors, not strings.
var (
	// ErrQueueFull means the query could not even wait: the scheduler is at
	// its concurrency limit and the queue is at capacity. Clients should
	// back off and retry.
	ErrQueueFull = errors.New("sched: admission queue full")
	// ErrQueueTimeout means the query waited its full queue timeout
	// without being admitted.
	ErrQueueTimeout = errors.New("sched: timed out waiting for admission")
	// ErrDraining means the scheduler is shutting down and admits nothing.
	ErrDraining = errors.New("sched: scheduler is draining")
	// ErrTenantQuota means the query's tenant is declared with a zero
	// concurrency quota: the tenant is administratively shut off and its
	// queries are rejected without queueing.
	ErrTenantQuota = errors.New("sched: tenant admission quota is zero")
)

// DefaultTenantName is the tenant untagged admissions are attributed to
// when Options.DefaultTenant is empty.
const DefaultTenantName = "default"

// DefaultAgeStep is the starvation-guard aging interval when
// Options.AgeStep is zero: a waiter's effective priority rises by one
// per step spent in the queue.
const DefaultAgeStep = 100 * time.Millisecond

// maxTrackedTenants bounds the per-tenant accounting map: tenant keys
// arrive from untrusted wire clients, so without a cap a client cycling
// random names would grow the map (and every Stats snapshot) without
// bound. Undeclared tenants past the cap are folded into
// OverflowTenantName — budgets are unaffected (undeclared tenants only
// ever had the global one), only the stats label coarsens.
const maxTrackedTenants = 1024

// OverflowTenantName is the catch-all stats bucket for undeclared
// tenants seen after maxTrackedTenants distinct keys.
const OverflowTenantName = "~other"

// Tag attributes one admission to a tenant and a priority class. The
// zero Tag means the default tenant at priority 0.
type Tag struct {
	// Tenant is the tenant key; empty maps to the scheduler's default
	// tenant.
	Tenant string
	// Priority orders waiting admissions: higher runs first. Priorities
	// only order the queue — they never preempt running queries.
	Priority int
}

// TenantQuota is a declared tenant's budget. MaxConcurrent <= 0 shuts
// the tenant off (its admissions fail with ErrTenantQuota); MaxSlots <= 0
// leaves the tenant bounded only by the global slot budget.
type TenantQuota struct {
	MaxConcurrent int `json:"max_concurrent"`
	MaxSlots      int `json:"max_slots,omitempty"`
}

// Options configures a Scheduler.
type Options struct {
	// MaxConcurrent is the maximum number of queries running at once.
	// Values < 1 are treated as 1.
	MaxConcurrent int
	// MaxSlots bounds the total worker slots across all running queries,
	// where a query's cost is its effective DOP. 0 disables the slot
	// budget (only MaxConcurrent limits). A query costing more than
	// MaxSlots is clamped to MaxSlots so it can still run (alone).
	MaxSlots int
	// QueueDepth is how many queries may wait for admission. 0 means no
	// queue: anything over MaxConcurrent is rejected immediately.
	QueueDepth int
	// QueueTimeout bounds how long one query waits in the queue before
	// failing with ErrQueueTimeout. 0 means wait until the query's own
	// context expires.
	QueueTimeout time.Duration
	// DefaultTenant names the tenant untagged admissions belong to;
	// empty means DefaultTenantName.
	DefaultTenant string
	// Tenants declares per-tenant budgets. Tenants absent from the map
	// run under the global budget alone.
	Tenants map[string]TenantQuota
	// AgeStep is the starvation guard: a waiter's effective priority
	// rises by 1 per AgeStep spent queued, so low-priority waiters
	// eventually overtake a stream of fresh high-priority arrivals.
	// 0 means DefaultAgeStep; negative disables aging.
	AgeStep time.Duration
}

// QuotaFor resolves the declared quota for a (possibly empty) tenant
// key, applying the default-tenant mapping. ok is false for undeclared
// tenants, which run under the global budget.
func (o Options) QuotaFor(tenant string) (TenantQuota, bool) {
	q, ok := o.Tenants[o.resolveTenant(tenant)]
	return q, ok
}

func (o Options) resolveTenant(tenant string) string {
	if tenant != "" {
		return tenant
	}
	if o.DefaultTenant != "" {
		return o.DefaultTenant
	}
	return DefaultTenantName
}

// waitBuckets are the upper bounds (exclusive) of the queue-wait
// histogram, in the order Stats.WaitHistogram reports them; a wait at or
// past the last bound lands in the final unbounded bucket.
var waitBuckets = []time.Duration{
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// WaitBucketLabels names the histogram buckets, aligned with
// Stats.WaitHistogram.
var WaitBucketLabels = []string{"<1ms", "<10ms", "<100ms", "<1s", ">=1s"}

// TenantStats is one tenant's slice of the scheduler counters. The
// counter/gauge fields mirror Stats; Declared distinguishes a tenant
// shut off with a zero quota from one merely unconfigured.
type TenantStats struct {
	Admitted  uint64 `json:"admitted"`
	Queued    uint64 `json:"queued"`
	Rejected  uint64 `json:"rejected"`
	TimedOut  uint64 `json:"timed_out"`
	Cancelled uint64 `json:"cancelled"`
	Drained   uint64 `json:"drained"`

	Active     int `json:"active"`
	Waiting    int `json:"waiting"`
	SlotsInUse int `json:"slots_in_use"`

	MaxActive     int `json:"max_active"`
	MaxSlotsInUse int `json:"max_slots_in_use"`

	WaitHistogram [5]uint64     `json:"wait_histogram"`
	TotalWait     time.Duration `json:"total_wait_ns"`

	// Declared quota: meaningful only when Declared. MaxConcurrent 0 on
	// a declared tenant means administratively shut off (so it is
	// always emitted); MaxSlots 0 means only the global slot budget
	// applies.
	Declared      bool `json:"declared,omitempty"`
	MaxConcurrent int  `json:"max_concurrent"`
	MaxSlots      int  `json:"max_slots,omitempty"`
}

// Stats is a point-in-time snapshot of the scheduler's counters and
// gauges.
type Stats struct {
	// Cumulative counters.
	Admitted  uint64 `json:"admitted"`  // queries admitted (incl. after queueing)
	Queued    uint64 `json:"queued"`    // queries that had to wait before admission or failure
	Rejected  uint64 `json:"rejected"`  // ErrQueueFull and ErrTenantQuota
	TimedOut  uint64 `json:"timed_out"` // ErrQueueTimeout
	Cancelled uint64 `json:"cancelled"` // context cancelled/expired while waiting
	Drained   uint64 `json:"drained"`   // waiters failed by Drain

	// Gauges.
	Active     int `json:"active"`       // queries running now
	Waiting    int `json:"waiting"`      // queries queued now
	SlotsInUse int `json:"slots_in_use"` // worker slots held by running queries

	// High-water marks since construction: the acceptance check that
	// admission control actually bounded concurrency.
	MaxActive     int `json:"max_active"`
	MaxSlotsInUse int `json:"max_slots_in_use"`

	// WaitHistogram counts admitted-after-queueing queries by queue wait,
	// bucketed per WaitBucketLabels. TotalWait sums every queue wait
	// (admitted or not), for mean-wait computation.
	WaitHistogram [5]uint64     `json:"wait_histogram"`
	TotalWait     time.Duration `json:"total_wait_ns"`

	Draining bool `json:"draining"`

	// Limits echo the configuration so /stats is self-describing.
	MaxConcurrent int `json:"max_concurrent"`
	MaxSlots      int `json:"max_slots"`
	QueueDepth    int `json:"queue_depth"`

	// Tenants breaks the counters down per tenant key (every tenant ever
	// seen, declared or not).
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// tenantState is the live accounting for one tenant key.
type tenantState struct {
	name     string
	declared bool
	quota    TenantQuota

	active     int
	slotsInUse int
	waiting    int

	stats TenantStats // counters + high-water marks; gauges filled at snapshot
}

// waiter is one queued admission request. res carries the outcome: nil
// means admitted (the waiter owns its slots), non-nil means the
// scheduler failed the wait (drain). It is buffered so the scheduler
// never blocks signalling a waiter that is simultaneously giving up.
type waiter struct {
	cost      int
	tag       Tag
	ts        *tenantState
	seq       uint64 // arrival order, the FIFO tie-break within a priority class
	res       chan error
	signalled bool // an outcome was sent on res; guarded by s.mu
	enqueued  time.Time
}

// failKind selects which failure counters a failed wait books.
type failKind int

const (
	failCancelled failKind = iota
	failTimedOut
)

// Scheduler is a weighted-slot, tenant-aware admission controller.
// Admission order is (effective priority desc, arrival order asc); see
// the package comment for the fairness rules.
type Scheduler struct {
	opts    Options
	ageStep time.Duration // resolved: 0 = aging disabled

	mu         sync.Mutex
	active     int
	slotsInUse int
	queue      []*waiter
	nextSeq    uint64
	tenants    map[string]*tenantState
	draining   bool
	drainDone  chan struct{} // closed when draining && active == 0

	stats Stats
}

// New builds a Scheduler. MaxConcurrent < 1 is raised to 1.
func New(opts Options) *Scheduler {
	if opts.MaxConcurrent < 1 {
		opts.MaxConcurrent = 1
	}
	if opts.QueueDepth < 0 {
		opts.QueueDepth = 0
	}
	if opts.MaxSlots < 0 {
		opts.MaxSlots = 0
	}
	s := &Scheduler{opts: opts, tenants: make(map[string]*tenantState)}
	switch {
	case opts.AgeStep > 0:
		s.ageStep = opts.AgeStep
	case opts.AgeStep == 0:
		s.ageStep = DefaultAgeStep
	}
	// Declared tenants exist from construction so /stats shows the
	// configured fleet before any traffic arrives.
	for name, q := range opts.Tenants {
		if q.MaxConcurrent < 0 {
			q.MaxConcurrent = 0
		}
		if q.MaxSlots < 0 {
			q.MaxSlots = 0
		}
		s.tenants[name] = &tenantState{name: name, declared: true, quota: q}
	}
	return s
}

// Options returns the configured limits.
func (s *Scheduler) Options() Options { return s.opts }

// tenantLocked resolves (lazily creating) the state for a tenant key;
// callers hold s.mu. Undeclared tenants are tracked too, so per-tenant
// stats cover everyone who ever showed up — up to maxTrackedTenants
// distinct keys, past which new undeclared names share the overflow
// bucket (tenant keys are wire-client-controlled; the map must not be).
func (s *Scheduler) tenantLocked(name string) *tenantState {
	ts := s.tenants[name]
	if ts == nil {
		if len(s.tenants) >= maxTrackedTenants {
			name = OverflowTenantName
			if ts = s.tenants[name]; ts != nil {
				return ts
			}
		}
		ts = &tenantState{name: name}
		s.tenants[name] = ts
	}
	return ts
}

// clampCost normalizes a query's slot cost: at least 1, and never more
// than the global or tenant slot budget (a DOP-64 query on an 8-slot
// scheduler runs alone at cost 8 rather than deadlocking forever).
func (s *Scheduler) clampCost(ts *tenantState, cost int) int {
	if cost < 1 {
		cost = 1
	}
	if s.opts.MaxSlots > 0 && cost > s.opts.MaxSlots {
		cost = s.opts.MaxSlots
	}
	if ts.declared && ts.quota.MaxSlots > 0 && cost > ts.quota.MaxSlots {
		cost = ts.quota.MaxSlots
	}
	return cost
}

// fits reports whether a query of the given cost can start now, and if
// not, whether the binding constraint is the tenant's own budget (the
// admission scan skips tenant-blocked waiters but stops at globally
// blocked ones); callers hold s.mu.
func (s *Scheduler) fits(ts *tenantState, cost int) (ok, tenantBlocked bool) {
	if ts.declared {
		if ts.active >= ts.quota.MaxConcurrent {
			return false, true
		}
		if ts.quota.MaxSlots > 0 && ts.slotsInUse+cost > ts.quota.MaxSlots {
			return false, true
		}
	}
	if s.active >= s.opts.MaxConcurrent {
		return false, false
	}
	if s.opts.MaxSlots > 0 && s.slotsInUse+cost > s.opts.MaxSlots {
		return false, false
	}
	return true, false
}

// admitLocked marks a query running; callers hold s.mu.
func (s *Scheduler) admitLocked(ts *tenantState, cost int) {
	s.active++
	s.slotsInUse += cost
	s.stats.Admitted++
	if s.active > s.stats.MaxActive {
		s.stats.MaxActive = s.active
	}
	if s.slotsInUse > s.stats.MaxSlotsInUse {
		s.stats.MaxSlotsInUse = s.slotsInUse
	}
	ts.active++
	ts.slotsInUse += cost
	ts.stats.Admitted++
	if ts.active > ts.stats.MaxActive {
		ts.stats.MaxActive = ts.active
	}
	if ts.slotsInUse > ts.stats.MaxSlotsInUse {
		ts.stats.MaxSlotsInUse = ts.slotsInUse
	}
}

// Acquire admits an untagged query (default tenant, priority 0). See
// AcquireTag.
func (s *Scheduler) Acquire(ctx context.Context, cost int) (func(), error) {
	return s.AcquireTag(ctx, cost, Tag{})
}

// AcquireTag admits a query of the given slot cost for the tagged
// tenant, blocking in the priority queue if the scheduler is saturated.
// On success it returns an idempotent release function that the caller
// must invoke exactly when the query finishes (Rows.Close does). On
// failure it returns one of ErrQueueFull, ErrTenantQuota,
// ErrQueueTimeout, ErrDraining, or ctx.Err().
func (s *Scheduler) AcquireTag(ctx context.Context, cost int, tag Tag) (func(), error) {
	tag.Tenant = s.opts.resolveTenant(tag.Tenant)
	// A context that is already dead never enters the queue.
	if err := ctx.Err(); err != nil {
		s.mu.Lock()
		s.stats.Cancelled++
		s.tenantLocked(tag.Tenant).stats.Cancelled++
		s.mu.Unlock()
		return nil, err
	}

	s.mu.Lock()
	ts := s.tenantLocked(tag.Tenant)
	if s.draining {
		s.stats.Drained++
		ts.stats.Drained++
		s.mu.Unlock()
		return nil, ErrDraining
	}
	// A declared zero quota is an administrative shutoff: reject without
	// queueing (the tenant could never run, so waiting is a lie).
	if ts.declared && ts.quota.MaxConcurrent <= 0 {
		s.stats.Rejected++
		ts.stats.Rejected++
		s.mu.Unlock()
		return nil, ErrTenantQuota
	}
	cost = s.clampCost(ts, cost)
	// Admit immediately when this arrival fits and nothing queued has a
	// prior claim on the capacity — one O(queue) pass, no sort. This one
	// rule covers the empty-queue fast path, overtaking an all-blocked
	// queue (a queue full of tenant-blocked waiters must not lock other
	// tenants out of free capacity), and priority jumps past
	// lower-ranked waiters.
	if ok, _ := s.fits(ts, cost); ok && !s.queueBlocksLocked(ts, tag.Priority) {
		s.admitLocked(ts, cost)
		s.mu.Unlock()
		return s.releaseFunc(ts, cost), nil
	}
	if len(s.queue) >= s.opts.QueueDepth {
		s.stats.Rejected++
		ts.stats.Rejected++
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.nextSeq++
	w := &waiter{cost: cost, tag: tag, ts: ts, seq: s.nextSeq, res: make(chan error, 1), enqueued: time.Now()}
	s.queue = append(s.queue, w)
	ts.waiting++
	s.stats.Queued++
	ts.stats.Queued++
	// Enqueueing frees no capacity, but aging may have reordered the
	// queue since the last capacity event: a waiter that was ranked
	// below a globally-blocked head at the last scan can now rank above
	// it and fit, with nothing else to trigger a scan — so arrivals
	// double as rescan opportunities (cheap: the scan early-outs O(1)
	// whenever the budget is saturated). The scan may also admit w
	// itself where the conservative fast-path check declined.
	s.admitNextLocked()
	s.mu.Unlock()

	var timeout <-chan time.Time
	if s.opts.QueueTimeout > 0 {
		t := time.NewTimer(s.opts.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}

	select {
	case err := <-w.res:
		if err != nil {
			// Drain failed the wait; counters were booked at the drain site.
			return nil, err
		}
		s.recordWait(w, true)
		return s.releaseFunc(ts, cost), nil
	case <-ctx.Done():
		return nil, s.giveUp(w, failCancelled, ctx.Err())
	case <-timeout:
		return nil, s.giveUp(w, failTimedOut, ErrQueueTimeout)
	}
}

// bookFailureLocked moves the failure counters for one failed wait;
// callers hold s.mu.
func (s *Scheduler) bookFailureLocked(ts *tenantState, kind failKind) {
	switch kind {
	case failCancelled:
		s.stats.Cancelled++
		ts.stats.Cancelled++
	case failTimedOut:
		s.stats.TimedOut++
		ts.stats.TimedOut++
	}
}

// giveUp handles a waiter abandoning the queue (cancel/timeout). If the
// scheduler signalled the waiter concurrently, the signalled outcome is
// honored for slot accounting — an admission's slots are returned — but
// the caller's failure is still reported (the query will not run).
func (s *Scheduler) giveUp(w *waiter, kind failKind, failure error) error {
	s.mu.Lock()
	if !w.signalled {
		w.signalled = true
		s.removeWaiterLocked(w)
		d := time.Since(w.enqueued)
		s.stats.TotalWait += d
		w.ts.stats.TotalWait += d
		s.bookFailureLocked(w.ts, kind)
		// Removing a waiter can unblock others (it may have been the
		// globally blocked head the scan stopped at).
		s.admitNextLocked()
		s.mu.Unlock()
		return failure
	}
	s.mu.Unlock()
	// Lost the race: an outcome is already buffered on res. If it was an
	// admission, the caller's failure is still what happened from the
	// query's point of view, so the failure counter moves and the slots
	// go back — Admitted then overcounts by this (rare) wasted admission,
	// which the immediate release repays. If it was a drain failure, the
	// Drained counter already booked it and nothing else must (each
	// failed wait counts exactly once across the failure counters).
	if err := <-w.res; err == nil {
		s.mu.Lock()
		s.bookFailureLocked(w.ts, kind)
		s.mu.Unlock()
		s.recordWait(w, false)
		s.releaseFunc(w.ts, w.cost)()
	}
	return failure
}

// removeWaiterLocked deletes w from the queue; callers hold s.mu.
func (s *Scheduler) removeWaiterLocked(w *waiter) {
	for i, q := range s.queue {
		if q == w {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			w.ts.waiting--
			return
		}
	}
}

// recordWait books a queue wait into the histograms (admitted waits
// only) and the running totals. counted distinguishes the normal
// admission path from the gave-up-but-was-admitted race, where the wait
// still totals but the admission was wasted.
func (s *Scheduler) recordWait(w *waiter, counted bool) {
	d := time.Since(w.enqueued)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.TotalWait += d
	w.ts.stats.TotalWait += d
	if !counted {
		return
	}
	b := len(waitBuckets)
	for i, ub := range waitBuckets {
		if d < ub {
			b = i
			break
		}
	}
	s.stats.WaitHistogram[b]++
	w.ts.stats.WaitHistogram[b]++
}

// releaseFunc builds the idempotent ticket for one admitted query.
func (s *Scheduler) releaseFunc(ts *tenantState, cost int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.active--
			s.slotsInUse -= cost
			ts.active--
			ts.slotsInUse -= cost
			s.admitNextLocked()
			if s.draining && s.active == 0 && s.drainDone != nil {
				close(s.drainDone)
				s.drainDone = nil
			}
			s.mu.Unlock()
		})
	}
}

// queueBlocksLocked reports whether some queued waiter has a prior
// claim on the capacity a new arrival (tenant ts, the given priority)
// would take, i.e. whether the admission scan run over queue+arrival
// would NOT admit the arrival. Only waiters that outrank the arrival
// matter (aged priority >= prio — every waiter arrived earlier, so
// ties go to the queue):
//
//   - any outranking tenant-mate blocks (the arrival would be parked
//     behind its own tenant's head, whatever that head waits on);
//   - for each other tenant only its top-ranked outranking waiter
//     speaks for it, mirroring the scan: if that waiter is blocked by
//     its own tenant's budget the whole tenant is parked and claims
//     nothing, otherwise it is first in line for the capacity
//     (globally blocked or outright fitting) and the arrival must not
//     jump it.
//
// One O(queue) pass, no sort; callers hold s.mu.
func (s *Scheduler) queueBlocksLocked(ts *tenantState, prio int) bool {
	now := time.Now()
	var top map[*tenantState]*waiter
	for _, w := range s.queue {
		if s.effPriority(w, now) < prio {
			continue
		}
		if w.ts == ts {
			return true
		}
		if top == nil {
			top = make(map[*tenantState]*waiter)
		}
		if t := top[w.ts]; t == nil || s.ranksBefore(w, t, now) {
			top[w.ts] = w
		}
	}
	for _, w := range top {
		if _, tenantBlocked := s.fits(w.ts, w.cost); !tenantBlocked {
			return true
		}
	}
	return false
}

// ranksBefore is the admission order: aged priority desc, arrival seq
// asc.
func (s *Scheduler) ranksBefore(a, b *waiter, now time.Time) bool {
	pa, pb := s.effPriority(a, now), s.effPriority(b, now)
	if pa != pb {
		return pa > pb
	}
	return a.seq < b.seq
}

// effPriority is a waiter's aged priority: its tag priority plus one
// level per ageStep spent waiting (the starvation guard).
func (s *Scheduler) effPriority(w *waiter, now time.Time) int {
	p := w.tag.Priority
	if s.ageStep > 0 {
		p += int(now.Sub(w.enqueued) / s.ageStep)
	}
	return p
}

// admitNextLocked admits queued waiters in weighted-fair order —
// effective (aged) priority desc, arrival order asc — skipping waiters
// blocked only by their own tenant's budget and stopping at the first
// waiter blocked by the global budget; callers hold s.mu.
func (s *Scheduler) admitNextLocked() {
	if s.draining || len(s.queue) == 0 {
		return
	}
	// When the global budget is exhausted fits() is false for every
	// waiter, so skip the copy+sort entirely — the saturated enqueue
	// path stays O(1) under the mutex; the sort only runs on events
	// with room to admit.
	if s.active >= s.opts.MaxConcurrent {
		return
	}
	if s.opts.MaxSlots > 0 && s.slotsInUse >= s.opts.MaxSlots {
		return // every cost is >= 1, so no waiter can fit a full slot budget
	}
	now := time.Now()
	order := make([]*waiter, len(s.queue))
	copy(order, s.queue)
	sort.Slice(order, func(i, j int) bool { return s.ranksBefore(order[i], order[j], now) })
	// One sorted pass admits everything a repeated rescan would: an
	// admission only shrinks capacity (fits can flip true→false, never
	// back), removal leaves the others' order untouched, and a
	// tenant-blocked waiter stays tenant-blocked when its tenant's
	// usage only grows — so continuing the scan is sound and a burst of
	// admissions costs one O(n log n) sort, not one per admission.
	var parked map[*tenantState]bool
	for _, w := range order {
		if parked[w.ts] {
			// An outranking waiter of this same tenant is parked on the
			// tenant's budget: admitting w would starve it behind its own
			// tenant's cheaper queries — the per-tenant mirror of the
			// global head-of-line rule below.
			continue
		}
		ok, tenantBlocked := s.fits(w.ts, w.cost)
		if ok {
			s.removeWaiterLocked(w)
			w.signalled = true
			s.admitLocked(w.ts, w.cost)
			w.res <- nil
			continue
		}
		if !tenantBlocked {
			// Globally blocked: the highest-priority waiter that cannot
			// fit blocks everyone below it (no starvation of expensive
			// queries by cheap ones arriving behind them).
			return
		}
		// Tenant-blocked: park the tenant and keep scanning — a
		// saturated tenant must not hold global capacity hostage, but
		// only other tenants may pass its blocked head.
		if parked == nil {
			parked = make(map[*tenantState]bool)
		}
		parked[w.ts] = true
	}
}

// Load is the scheduler's cheap point-in-time load signal: the gauges a
// health probe needs — queue depth above all — without the per-tenant
// map a full Stats snapshot allocates. Cluster routers read it (via
// /healthz) on every probe to decide saturation spill-over, so it must
// stay allocation-free under the mutex.
type Load struct {
	Active     int  `json:"active"`
	Waiting    int  `json:"waiting"`
	SlotsInUse int  `json:"slots_in_use"`
	Draining   bool `json:"draining"`
	// Limits echo the configuration so a reader can turn the gauges
	// into a saturation ratio without a second request.
	MaxConcurrent int `json:"max_concurrent"`
	MaxSlots      int `json:"max_slots,omitempty"`
	QueueDepth    int `json:"queue_depth"`
}

// Load snapshots the live gauges without building the tenant breakdown.
func (s *Scheduler) Load() Load {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Load{
		Active:        s.active,
		Waiting:       len(s.queue),
		SlotsInUse:    s.slotsInUse,
		Draining:      s.draining,
		MaxConcurrent: s.opts.MaxConcurrent,
		MaxSlots:      s.opts.MaxSlots,
		QueueDepth:    s.opts.QueueDepth,
	}
}

// Drain stops admissions: every queued waiter fails with ErrDraining,
// new Acquire calls fail immediately, and Drain blocks until in-flight
// queries release (or ctx expires, returning ctx.Err() with queries
// still running). Drain is idempotent; concurrent calls all wait.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, w := range s.queue {
			w.signalled = true
			s.stats.Drained++
			w.ts.stats.Drained++
			d := time.Since(w.enqueued)
			s.stats.TotalWait += d
			w.ts.stats.TotalWait += d
			w.ts.waiting--
			w.res <- ErrDraining
		}
		s.queue = nil
	}
	if s.active == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.drainDone == nil {
		s.drainDone = make(chan struct{})
	}
	done := s.drainDone
	s.mu.Unlock()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether the scheduler has begun shutting down.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats snapshots the counters, including the per-tenant breakdown.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Active = s.active
	st.Waiting = len(s.queue)
	st.SlotsInUse = s.slotsInUse
	st.Draining = s.draining
	st.MaxConcurrent = s.opts.MaxConcurrent
	st.MaxSlots = s.opts.MaxSlots
	st.QueueDepth = s.opts.QueueDepth
	st.Tenants = make(map[string]TenantStats, len(s.tenants))
	for name, ts := range s.tenants {
		t := ts.stats
		t.Active = ts.active
		t.Waiting = ts.waiting
		t.SlotsInUse = ts.slotsInUse
		t.Declared = ts.declared
		if ts.declared {
			t.MaxConcurrent = ts.quota.MaxConcurrent
			t.MaxSlots = ts.quota.MaxSlots
		}
		st.Tenants[name] = t
	}
	return st
}
