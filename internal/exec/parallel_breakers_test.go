package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/big"
	"testing"
	"time"

	"raven/internal/expr"
	"raven/internal/plan"
	"raven/internal/storage"
	"raven/internal/types"
)

// batchesEqual asserts two batches match row for row, column for column.
func batchesEqual(t *testing.T, label string, want, got *types.Batch) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", label, got.Len(), want.Len())
	}
	if got.Schema.Len() != want.Schema.Len() {
		t.Fatalf("%s: schema %v vs %v", label, got.Schema, want.Schema)
	}
	for j := range want.Vecs {
		for i := 0; i < want.Len(); i++ {
			a, b := want.Vecs[j].Value(i), got.Vecs[j].Value(i)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("%s: col %s row %d: got %v, want %v",
					label, want.Schema.Columns[j].Name, i, b, a)
			}
		}
	}
}

// parEnv compiles with dop workers, tiny morsels and no parallel
// threshold, so even small test tables exercise the parallel paths.
func parEnv(dop int) *Env {
	return &Env{Parallelism: dop, ParallelThresholdRows: 1, MorselSize: 512}
}

func compileCollect(t *testing.T, n plan.Node, env *Env) *types.Batch {
	t.Helper()
	op, err := Compile(n, env)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCompareVecsInt64Precision(t *testing.T) {
	// 2^53 and 2^53+1 coerce to the same float64; the typed path must
	// still order them.
	v := types.NewVector(types.Int, 0)
	for _, k := range []int64{1 << 53, 1<<53 + 1, -(1 << 60), 1<<60 + 7, 1 << 60} {
		if err := v.Append(k); err != nil {
			t.Fatal(err)
		}
	}
	if float64(v.Ints[0]) != float64(v.Ints[1]) {
		t.Fatal("test premise broken: keys distinguishable as float64")
	}
	if c := compareAt(v, 0, 1); c != -1 {
		t.Errorf("compareAt(2^53, 2^53+1) = %d, want -1", c)
	}
	if c := compareAt(v, 3, 4); c != 1 {
		t.Errorf("compareAt(2^60+7, 2^60) = %d, want 1", c)
	}
	if c := compareAt(v, 2, 0); c != -1 {
		t.Errorf("compareAt(-2^60, 2^53) = %d, want -1", c)
	}
	if c := compareAt(v, 4, 4); c != 0 {
		t.Errorf("compareAt(x, x) = %d, want 0", c)
	}
}

// TestRunSortLargeInt64Keys is the regression for the old AsFloat-based
// compareAt: adjacent int64 sort keys above 2^53 must come out in exact
// numeric order, serial and parallel alike.
func TestRunSortLargeInt64Keys(t *testing.T) {
	tb := storage.NewTable("big", types.NewSchema(
		types.Column{Name: "k", Type: types.Int},
		types.Column{Name: "tag", Type: types.Int},
	))
	base := int64(1) << 53
	// Descending interleave of adjacent keys float64 cannot distinguish.
	n := 4000
	for i := 0; i < n; i++ {
		if err := tb.AppendRow(base+int64((n-i)*2%(n+1)), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	root := &plan.Sort{Child: plan.NewScan(tb), Keys: []plan.SortKey{{Col: "k"}}}
	for _, dop := range []int{1, 4} {
		out := compileCollect(t, root, parEnv(dop))
		if out.Len() != n {
			t.Fatalf("dop=%d: %d rows", dop, out.Len())
		}
		ks := out.Col("k").Ints
		for i := 1; i < len(ks); i++ {
			if ks[i-1] > ks[i] {
				t.Fatalf("dop=%d: keys out of order at %d: %d > %d (AsFloat collapse?)", dop, i, ks[i-1], ks[i])
			}
		}
	}
}

func TestExactFloatSumOrderInvariantAndCorrect(t *testing.T) {
	vals := []float64{1e16, 3.14159, -1e16, 1e-8, 2.71828, -2.5e7, 1.0 / 3.0, 1e308 * 1e-300, -7.25, 0.1, 0.2, 0.3}
	// Reference: exact rational sum via big.Float at high precision.
	ref := new(big.Float).SetPrec(400)
	for _, v := range vals {
		ref.Add(ref, new(big.Float).SetPrec(400).SetFloat64(v))
	}
	want, _ := ref.Float64()

	sumOf := func(order []int) float64 {
		var s exactFloatSum
		for _, i := range order {
			s.Add(vals[i])
		}
		return s.Round()
	}
	fwd := make([]int, len(vals))
	rev := make([]int, len(vals))
	shuf := make([]int, len(vals))
	for i := range vals {
		fwd[i] = i
		rev[i] = len(vals) - 1 - i
		shuf[i] = (i*7 + 3) % len(vals)
	}
	for name, order := range map[string][]int{"forward": fwd, "reverse": rev, "shuffled": shuf} {
		if got := sumOf(order); got != want {
			t.Errorf("%s order: %v, want %v", name, got, want)
		}
	}
	// Split + merge must agree too (the parallel partial-aggregate path).
	var a, b exactFloatSum
	for i, v := range vals {
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if got := a.Round(); got != want {
		t.Errorf("split+merge: %v, want %v", got, want)
	}
	// Specials: NaN poisons, opposing infs go NaN.
	var sInf exactFloatSum
	sInf.Add(math.Inf(1))
	sInf.Add(1)
	if !math.IsInf(sInf.Round(), 1) {
		t.Errorf("inf sum = %v", sInf.Round())
	}
	sInf.Add(math.Inf(-1))
	if !math.IsNaN(sInf.Round()) {
		t.Errorf("inf + -inf = %v, want NaN", sInf.Round())
	}
	// Intermediate overflow saturates to ±Inf (IEEE semantics) instead of
	// corrupting the expansion with Inf-Inf garbage.
	var sOv exactFloatSum
	sOv.Add(math.MaxFloat64)
	sOv.Add(math.MaxFloat64)
	sOv.Add(-math.MaxFloat64)
	if !math.IsInf(sOv.Round(), 1) {
		t.Errorf("overflowing sum = %v, want +Inf", sOv.Round())
	}
}

// aggPlan is the shared GROUP BY shape: filter + group with every
// aggregate function over mixed column types.
func aggPlan(t *testing.T, tb *storage.Table) plan.Node {
	t.Helper()
	agg, err := plan.NewAggregate(
		&plan.Filter{Child: plan.NewScan(tb), Pred: expr.NewBinary(expr.OpGt, &expr.Column{Name: "x"}, expr.FloatLit(5))},
		[]string{"grp"},
		[]plan.AggSpec{
			{Func: plan.AggCount, Name: "n"},
			{Func: plan.AggSum, Arg: &expr.Column{Name: "x"}, Name: "sx"},
			{Func: plan.AggAvg, Arg: &expr.Column{Name: "x"}, Name: "ax"},
			{Func: plan.AggMin, Arg: &expr.Column{Name: "id"}, Name: "mn"},
			{Func: plan.AggMax, Arg: &expr.Column{Name: "id"}, Name: "mx"},
			{Func: plan.AggMin, Arg: &expr.Column{Name: "grp"}, Name: "mg"},
		})
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

func TestParallelAggregateMatchesSerialReference(t *testing.T) {
	tb := numbersTable(t, 30000)
	root := aggPlan(t, tb)

	// Reference: the serial HashAggregate operator over a plain scan.
	s, _ := NewTableScan(tb, nil)
	ref, err := NewHashAggregate(
		&FilterOp{Child: s, Pred: expr.NewBinary(expr.OpGt, &expr.Column{Name: "x"}, expr.FloatLit(5))},
		[]string{"grp"},
		root.(*plan.Aggregate).Aggs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(ref)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() != 3 {
		t.Fatalf("reference groups = %d", want.Len())
	}
	for _, dop := range []int{1, 4, 8} {
		got := compileCollect(t, root, parEnv(dop))
		batchesEqual(t, fmt.Sprintf("agg dop=%d", dop), want, got)
	}
}

func TestParallelAggregateManyGroups(t *testing.T) {
	// Group count near row count stresses the partial tables and the
	// deterministic first-seen merge order.
	tb := storage.NewTable("g", types.NewSchema(
		types.Column{Name: "k", Type: types.Int},
		types.Column{Name: "v", Type: types.Float},
	))
	for i := 0; i < 20000; i++ {
		if err := tb.AppendRow(int64(i%7919), float64(i)*0.25); err != nil {
			t.Fatal(err)
		}
	}
	agg, err := plan.NewAggregate(plan.NewScan(tb), []string{"k"}, []plan.AggSpec{
		{Func: plan.AggCount, Name: "n"},
		{Func: plan.AggSum, Arg: &expr.Column{Name: "v"}, Name: "sv"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := compileCollect(t, agg, parEnv(1))
	if want.Len() != 7919 {
		t.Fatalf("groups = %d", want.Len())
	}
	// First-seen order means group keys 0,1,2,... here.
	if want.Col("k").Ints[0] != 0 || want.Col("k").Ints[100] != 100 {
		t.Fatalf("group order broken: %v...", want.Col("k").Ints[:5])
	}
	got := compileCollect(t, agg, parEnv(8))
	batchesEqual(t, "many-groups dop=8", want, got)
}

func joinTables(t *testing.T) (*storage.Table, *storage.Table) {
	t.Helper()
	left := storage.NewTable("pl", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "a", Type: types.Float},
	))
	right := storage.NewTable("pr", types.NewSchema(
		types.Column{Name: "rid", Type: types.Int},
		types.Column{Name: "b", Type: types.Float},
	))
	for i := 0; i < 20000; i++ {
		_ = left.AppendRow(int64(i), float64(i)*0.5)
	}
	// Duplicate keys on the build side, partial coverage.
	for i := 5000; i < 15000; i++ {
		_ = right.AppendRow(int64(i), float64(i))
		if i%3 == 0 {
			_ = right.AppendRow(int64(i), float64(i)+0.5)
		}
	}
	return left, right
}

func TestParallelJoinMatchesSerialReference(t *testing.T) {
	left, right := joinTables(t)
	j, err := plan.NewJoin(plan.NewScan(left), plan.NewScan(right), "id", "rid")
	if err != nil {
		t.Fatal(err)
	}

	ls, _ := NewTableScan(left, nil)
	rs, _ := NewTableScan(right, nil)
	ref, err := NewHashJoin(ls, rs, "id", "rid")
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(ref)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("reference join empty")
	}
	for _, dop := range []int{1, 4, 8} {
		got := compileCollect(t, j, parEnv(dop))
		batchesEqual(t, fmt.Sprintf("join dop=%d", dop), want, got)
	}
}

func TestParallelJoinStringKeys(t *testing.T) {
	left := storage.NewTable("sl", types.NewSchema(
		types.Column{Name: "g", Type: types.String},
		types.Column{Name: "a", Type: types.Int},
	))
	right := storage.NewTable("sr", types.NewSchema(
		types.Column{Name: "g", Type: types.String},
		types.Column{Name: "w", Type: types.Float},
	))
	for i := 0; i < 5000; i++ {
		_ = left.AppendRow(fmt.Sprintf("g%d", i%97), int64(i))
	}
	for i := 0; i < 97; i += 2 {
		_ = right.AppendRow(fmt.Sprintf("g%d", i), float64(i)*1.5)
	}
	j, err := plan.NewJoin(plan.NewScan(left), plan.NewScan(right), "g", "g")
	if err != nil {
		t.Fatal(err)
	}
	want := compileCollect(t, j, parEnv(1))
	got := compileCollect(t, j, parEnv(8))
	if want.Len() == 0 {
		t.Fatal("string join empty")
	}
	batchesEqual(t, "string-key join", want, got)
}

// TestParallelJoinSignedZeroFloatKeys is the regression for partitioning
// float keys by raw bits: +0.0 and -0.0 compare equal (and the serial
// join matches them) but have different bit patterns, so the partition
// hash must collapse them or matches silently vanish.
func TestParallelJoinSignedZeroFloatKeys(t *testing.T) {
	left := storage.NewTable("zl", types.NewSchema(
		types.Column{Name: "k", Type: types.Float},
		types.Column{Name: "a", Type: types.Int},
	))
	right := storage.NewTable("zr", types.NewSchema(
		types.Column{Name: "k", Type: types.Float},
		types.Column{Name: "w", Type: types.Int},
	))
	negZero := math.Copysign(0, -1)
	_ = left.AppendRow(0.0, int64(1))
	_ = left.AppendRow(negZero, int64(2))
	_ = left.AppendRow(3.5, int64(3))
	_ = right.AppendRow(negZero, int64(10))
	_ = right.AppendRow(3.5, int64(30))
	j, err := plan.NewJoin(plan.NewScan(left), plan.NewScan(right), "k", "k")
	if err != nil {
		t.Fatal(err)
	}

	ls, _ := NewTableScan(left, nil)
	rs, _ := NewTableScan(right, nil)
	ref, err := NewHashJoin(ls, rs, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(ref)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() != 3 { // both zeros match -0.0, plus the 3.5 row
		t.Fatalf("reference rows = %d, want 3", want.Len())
	}
	for _, dop := range []int{1, 4} {
		got := compileCollect(t, j, parEnv(dop))
		batchesEqual(t, fmt.Sprintf("signed-zero join dop=%d", dop), want, got)
	}
}

// TestIdleExchangeUnwrapped asserts a root-level breaker is not left
// inside a stage-free re-parallelization exchange (pure overhead once
// nothing pushes above it).
func TestIdleExchangeUnwrapped(t *testing.T) {
	tb := numbersTable(t, 5000)
	agg, err := plan.NewAggregate(plan.NewScan(tb), []string{"grp"}, []plan.AggSpec{
		{Func: plan.AggCount, Name: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	op, err := Compile(agg, parEnv(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*ParallelHashAggregate); !ok {
		t.Errorf("root aggregate compiled to %T, want *ParallelHashAggregate (idle exchange unwrapped)", op)
	}
	// A scan exchange with real stages must NOT be unwrapped.
	f := &plan.Filter{Child: plan.NewScan(tb), Pred: expr.NewBinary(expr.OpGt, &expr.Column{Name: "x"}, expr.FloatLit(1))}
	op, err = Compile(f, parEnv(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*Exchange); !ok {
		t.Errorf("filtered scan compiled to %T, want *Exchange", op)
	}
}

// TestParallelJoinEarlyClose closes the join while probe workers may
// still be mid-morsel (the streaming-Rows early-stop path); under -race
// this is the regression for releasing the build tables before the
// probe pipeline has joined its workers.
func TestParallelJoinEarlyClose(t *testing.T) {
	left, right := joinTables(t)
	j, err := plan.NewJoin(plan.NewScan(left), plan.NewScan(right), "id", "rid")
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		op, err := Compile(j, parEnv(8))
		if err != nil {
			t.Fatal(err)
		}
		if err := op.Open(); err != nil {
			t.Fatal(err)
		}
		if _, err := op.Next(); err != nil {
			t.Fatal(err)
		}
		if err := op.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunSortNaNKeysParity: NaN must hold one defined position in the
// sort order (first, like sort.Float64s) or merge output would depend on
// which morsel the NaN landed in.
func TestRunSortNaNKeysParity(t *testing.T) {
	tb := storage.NewTable("nan", types.NewSchema(
		types.Column{Name: "v", Type: types.Float},
		types.Column{Name: "tag", Type: types.Int},
	))
	for i := 0; i < 3000; i++ {
		x := float64(i%97) * 1.5
		if i%131 == 0 {
			x = math.NaN()
		}
		_ = tb.AppendRow(x, int64(i))
	}
	root := &plan.Sort{Child: plan.NewScan(tb), Keys: []plan.SortKey{{Col: "v"}}}
	want := compileCollect(t, root, parEnv(1))
	// NaNs first, then ascending values; ties (and NaNs) in input order.
	vs := want.Col("v").Floats
	nans := 0
	for _, x := range vs {
		if math.IsNaN(x) {
			nans++
		}
	}
	for i, x := range vs {
		if i < nans != math.IsNaN(x) {
			t.Fatalf("NaNs not sorted first: v[%d] = %v (nans=%d)", i, x, nans)
		}
	}
	for _, dop := range []int{4, 8} {
		got := compileCollect(t, root, parEnv(dop))
		batchesEqual(t, fmt.Sprintf("nan sort dop=%d", dop), want, got)
	}
}

// TestGroupKeyNullDistinctFromLiteral: a NULL grouping value must not
// collide with the literal string "<nil>".
func TestGroupKeyNullDistinctFromLiteral(t *testing.T) {
	sch := types.NewSchema(types.Column{Name: "a", Type: types.String})
	b := types.NewBatch(sch)
	_ = b.AppendRow("<nil>")
	_ = b.AppendRow("x")
	b.Vecs[0].SetNull(1)
	kLit := string(appendGroupKey(nil, b, []int{0}, 0))
	kNull := string(appendGroupKey(nil, b, []int{0}, 1))
	if kLit == kNull {
		t.Fatalf("NULL and literal %q render the same group key %q", "<nil>", kLit)
	}
}

// TestGroupKeyDelimiterAmbiguity: string group values containing the key
// delimiter must not merge distinct groups (length-prefixed encoding).
func TestGroupKeyDelimiterAmbiguity(t *testing.T) {
	tb := storage.NewTable("amb", types.NewSchema(
		types.Column{Name: "a", Type: types.String},
		types.Column{Name: "b", Type: types.String},
	))
	_ = tb.AppendRow("x|", "y")
	_ = tb.AppendRow("x", "|y")
	_ = tb.AppendRow("x|", "y")
	agg, err := plan.NewAggregate(plan.NewScan(tb), []string{"a", "b"}, []plan.AggSpec{
		{Func: plan.AggCount, Name: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range []int{1, 4} {
		out := compileCollect(t, agg, parEnv(dop))
		if out.Len() != 2 {
			t.Fatalf("dop=%d: %d groups, want 2 (delimiter ambiguity merged groups)", dop, out.Len())
		}
		if out.Col("n").Ints[0] != 2 || out.Col("n").Ints[1] != 1 {
			t.Fatalf("dop=%d: counts = %v", dop, out.Col("n").Ints)
		}
	}
}

func TestRunSortMatchesStableSerialOrder(t *testing.T) {
	tb := numbersTable(t, 25000)
	// grp has only three values: massive key ties exercise the
	// (seq, row) tie-break that makes the merge a stable sort.
	root := &plan.Sort{Child: plan.NewScan(tb), Keys: []plan.SortKey{{Col: "grp"}, {Col: "x", Desc: true}}}
	want := compileCollect(t, root, parEnv(1))
	for _, dop := range []int{4, 8} {
		got := compileCollect(t, root, parEnv(dop))
		batchesEqual(t, fmt.Sprintf("sort dop=%d", dop), want, got)
	}
	// Spot-check the ordering contract itself.
	g := want.Col("grp").Strings
	xs := want.Col("x").Floats
	for i := 1; i < want.Len(); i++ {
		if g[i-1] > g[i] || (g[i-1] == g[i] && xs[i-1] < xs[i]) {
			t.Fatalf("not sorted at %d: (%s,%v) before (%s,%v)", i, g[i-1], xs[i-1], g[i], xs[i])
		}
	}
}

func TestBreakersStackedParity(t *testing.T) {
	// join -> aggregate -> sort -> limit: every breaker stacked, the
	// pipeline re-splitting above each one included.
	left, right := joinTables(t)
	j, err := plan.NewJoin(plan.NewScan(left), plan.NewScan(right), "id", "rid")
	if err != nil {
		t.Fatal(err)
	}
	agg, err := plan.NewAggregate(j, nil, []plan.AggSpec{
		{Func: plan.AggCount, Name: "n"},
		{Func: plan.AggSum, Arg: &expr.Column{Name: "b"}, Name: "sb"},
	})
	if err != nil {
		t.Fatal(err)
	}
	agg2, err := plan.NewAggregate(j, []string{"id"}, []plan.AggSpec{
		{Func: plan.AggCount, Name: "n"},
		{Func: plan.AggSum, Arg: &expr.Column{Name: "b"}, Name: "sb"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var root plan.Node = &plan.Limit{
		Child: &plan.Sort{Child: agg2, Keys: []plan.SortKey{{Col: "sb", Desc: true}, {Col: "id"}}},
		N:     500,
	}
	want := compileCollect(t, root, parEnv(1))
	if want.Len() != 500 {
		t.Fatalf("rows = %d", want.Len())
	}
	got := compileCollect(t, root, parEnv(8))
	batchesEqual(t, "stacked breakers", want, got)

	// Global aggregate over the join too (no group keys).
	wantG := compileCollect(t, agg, parEnv(1))
	gotG := compileCollect(t, agg, parEnv(8))
	batchesEqual(t, "global agg over join", wantG, gotG)
}

func TestStreamMorselSourceSequencesBatches(t *testing.T) {
	tb := numbersTable(t, 10000)
	s, _ := NewTableScan(tb, nil)
	src := &StreamMorselSource{Op: s}
	if err := src.Open(); err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var rows, next int
	for {
		seq, b, err := src.NextMorsel()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		if seq != next {
			t.Fatalf("seq = %d, want %d", seq, next)
		}
		next++
		rows += b.Len()
	}
	if rows != 10000 {
		t.Fatalf("rows = %d", rows)
	}
}

// blockingPredictor parks every PredictBatch call until the context
// fires, then reports its error — the worst-case "blocked predictor"
// below a breaker. The build/fold phases must propagate the error and
// join their workers.
type blockingPredictor struct{ ctx context.Context }

func (p blockingPredictor) PredictBatch(b *types.Batch) ([]*types.Vector, error) {
	<-p.ctx.Done()
	return nil, p.ctx.Err()
}

// TestBlockedPredictorBelowBuildAndMerge cancels a plan whose PREDICT
// blocks below (a) a parallel join's build input and (b) a parallel
// aggregate's fold phase — the two new phases this refactor added. Both
// must return the context error promptly with all workers joined.
func TestBlockedPredictorBelowBuildAndMerge(t *testing.T) {
	tb := numbersTable(t, 100000)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	env := parEnv(4)
	env.Ctx = ctx
	env.PredictorFactory = func(string, *types.Schema, []types.Column) (Predictor, error) {
		return blockingPredictor{ctx: ctx}, nil
	}

	// (a) blocked predictor feeding the join build (right input).
	pr := plan.NewPredict(plan.NewScan(tb), "m", []types.Column{{Name: "s", Type: types.Float}})
	j, err := plan.NewJoin(plan.NewScan(tb), pr, "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	op, err := Compile(j, env)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = Collect(op)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("join build below blocked predictor: err = %v", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("join build cancellation not prompt: %v", e)
	}

	// (b) blocked predictor below the aggregate fold.
	pr2 := plan.NewPredict(plan.NewScan(tb), "m", []types.Column{{Name: "s", Type: types.Float}})
	agg, err := plan.NewAggregate(pr2, []string{"grp"}, []plan.AggSpec{
		{Func: plan.AggSum, Arg: &expr.Column{Name: "s"}, Name: "ss"},
	})
	if err != nil {
		t.Fatal(err)
	}
	op, err = Compile(agg, env)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	_, err = Collect(op)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("aggregate over blocked predictor: err = %v", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("aggregate cancellation not prompt: %v", e)
	}
}

func TestBreakerCancellation(t *testing.T) {
	tb := numbersTable(t, 200000)
	agg, err := plan.NewAggregate(plan.NewScan(tb), []string{"grp"}, []plan.AggSpec{
		{Func: plan.AggSum, Arg: &expr.Column{Name: "x"}, Name: "sx"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env := parEnv(4)
	env.Ctx = ctx
	op, err := Compile(agg, env)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Collect(op)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled aggregate: err = %v", err)
	}

	j, err := plan.NewJoin(plan.NewScan(tb), plan.NewScan(tb), "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	op, err = Compile(j, env)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Collect(op)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled join: err = %v", err)
	}
}
