package sql

import (
	"fmt"
	"strconv"
	"strings"

	"raven/internal/types"
)

// Parse parses one statement (a trailing semicolon is allowed).
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().Text)
	}
	return st, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(input string) ([]Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	var out []Statement
	for !p.at(TokEOF, "") {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.accept(TokSymbol, ";") {
			break
		}
	}
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().Text)
	}
	return out, nil
}

type parser struct {
	toks []Token
	pos  int
	src  string
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == k && (text == "" || t.Text == text)
}

func (p *parser) accept(k TokenKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k TokenKind, text string) (Token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", k)
	}
	return Token{}, p.errf("expected %s, found %q", want, p.cur().Text)
}

// expectSoftKeyword consumes an identifier that must spell the given word
// (case-insensitively). MODEL and DATA are soft keywords: they introduce
// PREDICT arguments but remain usable as table/column names.
func (p *parser) expectSoftKeyword(word string) error {
	if p.at(TokIdent, "") && strings.EqualFold(p.cur().Text, word) {
		p.next()
		return nil
	}
	return p.errf("expected %s, found %q", word, p.cur().Text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(TokKeyword, "SELECT"), p.at(TokKeyword, "WITH"):
		return p.selectStmt()
	case p.at(TokKeyword, "CREATE"):
		return p.createTable()
	case p.at(TokKeyword, "DROP"):
		return p.dropTable()
	case p.at(TokKeyword, "INSERT"):
		return p.insert()
	case p.at(TokKeyword, "DECLARE"):
		return p.declare()
	default:
		return nil, p.errf("expected statement, found %q", p.cur().Text)
	}
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	var ctes []CTE
	if p.accept(TokKeyword, "WITH") {
		for {
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokKeyword, "AS"); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			inner, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			ctes = append(ctes, CTE{Name: name.Text, Select: inner})
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{CTEs: ctes, Limit: -1}
	st.Distinct = p.accept(TokKeyword, "DISTINCT")
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "FROM") {
		from, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		st.From = from
	}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.qualifiedName()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, c)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.qualifiedName()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Col: c}
			if p.accept(TokKeyword, "DESC") {
				it.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, it)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.Text)
		}
		st.Limit = n
	}
	return st, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.expression()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		a, err := p.expect(TokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a.Text
	} else if p.at(TokIdent, "") {
		item.Alias = p.next().Text
	}
	return item, nil
}

// tableRef parses primary refs joined by JOIN ... ON chains.
func (p *parser) tableRef() (TableRef, error) {
	left, err := p.tablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		if p.accept(TokKeyword, "INNER") {
			if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if !p.accept(TokKeyword, "JOIN") {
			break
		}
		right, err := p.tablePrimary()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.expression()
		if err != nil {
			return nil, err
		}
		left = &JoinRef{Left: left, Right: right, On: on}
	}
	return left, nil
}

func (p *parser) tablePrimary() (TableRef, error) {
	switch {
	case p.at(TokKeyword, "PREDICT"):
		return p.predictRef()
	case p.accept(TokSymbol, "("):
		inner, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		ref := &SubqueryRef{Select: inner}
		if p.accept(TokKeyword, "AS") {
			a, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			ref.Alias = a.Text
		} else if p.at(TokIdent, "") {
			ref.Alias = p.next().Text
		}
		return ref, nil
	case p.at(TokIdent, ""):
		name := p.next().Text
		ref := &TableName{Name: name}
		if p.accept(TokKeyword, "AS") {
			a, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			ref.Alias = a.Text
		} else if p.at(TokIdent, "") {
			ref.Alias = p.next().Text
		}
		return ref, nil
	default:
		return nil, p.errf("expected table reference, found %q", p.cur().Text)
	}
}

// predictRef parses
//
//	PREDICT(MODEL = @m, DATA = <table ref> AS d) WITH (col type, ...) AS p
func (p *parser) predictRef() (TableRef, error) {
	if _, err := p.expect(TokKeyword, "PREDICT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	if err := p.expectSoftKeyword("MODEL"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, "="); err != nil {
		return nil, err
	}
	ref := &PredictRef{}
	switch {
	case p.at(TokVariable, ""):
		ref.ModelVar = p.next().Text
	case p.at(TokString, ""):
		ref.ModelName = p.next().Text
	default:
		return nil, p.errf("PREDICT MODEL must be @variable or 'name', found %q", p.cur().Text)
	}
	if _, err := p.expect(TokSymbol, ","); err != nil {
		return nil, err
	}
	if err := p.expectSoftKeyword("DATA"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, "="); err != nil {
		return nil, err
	}
	data, err := p.tablePrimary()
	if err != nil {
		return nil, err
	}
	// "DATA = source AS d": the alias may have attached to the primary.
	switch d := data.(type) {
	case *TableName:
		ref.Data = d
		ref.DataAlias = d.Alias
	case *SubqueryRef:
		ref.Data = d
		ref.DataAlias = d.Alias
	default:
		ref.Data = data
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "WITH"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		col, err := p.columnDef()
		if err != nil {
			return nil, err
		}
		ref.OutputCols = append(ref.OutputCols, col)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	if p.accept(TokKeyword, "AS") {
		a, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		ref.Alias = a.Text
	} else if p.at(TokIdent, "") {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

func (p *parser) columnDef() (types.Column, error) {
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return types.Column{}, err
	}
	t := p.next()
	var dt types.DataType
	switch t.Text {
	case "FLOAT":
		dt = types.Float
	case "INT", "BIGINT":
		dt = types.Int
	case "BOOL", "BIT":
		dt = types.Bool
	case "VARCHAR":
		dt = types.String
		// optional (n)
		if p.accept(TokSymbol, "(") {
			if _, err := p.expect(TokNumber, ""); err != nil {
				return types.Column{}, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return types.Column{}, err
			}
		}
	default:
		return types.Column{}, p.errf("unknown column type %q", t.Text)
	}
	return types.Column{Name: name.Text, Type: dt}, nil
}

func (p *parser) createTable() (Statement, error) {
	p.next() // CREATE
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Name: name.Text}
	for {
		col, err := p.columnDef()
		if err != nil {
			return nil, err
		}
		if p.accept(TokKeyword, "PRIMARY") {
			if _, err := p.expect(TokKeyword, "KEY"); err != nil {
				return nil, err
			}
			st.PrimaryKey = col.Name
		}
		st.Cols = append(st.Cols, col)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) dropTable() (Statement, error) {
	p.next() // DROP
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name.Text}, nil
}

func (p *parser) insert() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name.Text}
	for {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) declare() (Statement, error) {
	p.next() // DECLARE
	v, err := p.expect(TokVariable, "")
	if err != nil {
		return nil, err
	}
	// Optional type annotation, e.g. "varbinary(max)" or VARCHAR(64) — the
	// engine stores all session variables as strings.
	if p.at(TokIdent, "") || p.at(TokKeyword, "VARCHAR") {
		p.next()
		if p.accept(TokSymbol, "(") {
			p.next() // max | number
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(TokSymbol, "="); err != nil {
		return nil, err
	}
	val, err := p.expect(TokString, "")
	if err != nil {
		return nil, fmt.Errorf("sql: DECLARE supports string values only (model names): %w", err)
	}
	return &DeclareStmt{Name: v.Text, Value: val.Text}, nil
}

// expression parses with precedence: OR < AND < NOT < comparison < add < mul.
func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryE{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryE{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &NotE{E: e}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "<>", "=", "<", ">"} {
		if p.accept(TokSymbol, op) {
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			return &BinaryE{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokSymbol, "+"):
			r, err := p.multiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryE{Op: "+", L: l, R: r}
		case p.accept(TokSymbol, "-"):
			r, err := p.multiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryE{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) multiplicative() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokSymbol, "*"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &BinaryE{Op: "*", L: l, R: r}
		case p.accept(TokSymbol, "/"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &BinaryE{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &BinaryE{Op: "-", L: &NumLit{I: 0, IsInt: true}, R: e}, nil
	}
	return p.primary()
}

var aggFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		if !strings.ContainsAny(t.Text, ".eE") {
			i, err := strconv.ParseInt(t.Text, 10, 64)
			if err == nil {
				return &NumLit{I: i, IsInt: true}, nil
			}
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &NumLit{F: f}, nil
	case t.Kind == TokString:
		p.next()
		return &StrLit{S: t.Text}, nil
	case t.Kind == TokVariable:
		p.next()
		return &VarRef{Name: t.Text}, nil
	case t.Kind == TokKeyword && (t.Text == "TRUE" || t.Text == "FALSE"):
		p.next()
		return &BoolLitE{B: t.Text == "TRUE"}, nil
	case t.Kind == TokKeyword && t.Text == "CASE":
		return p.caseExpr()
	case t.Kind == TokKeyword && aggFuncs[t.Text]:
		p.next()
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		f := &FuncE{Name: t.Text}
		if p.accept(TokSymbol, "*") {
			f.Star = true
		} else {
			arg, err := p.expression()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, arg)
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return f, nil
	case t.Kind == TokIdent:
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		if i := strings.IndexByte(name, '.'); i >= 0 {
			return &ColRef{Table: name[:i], Name: name[i+1:]}, nil
		}
		return &ColRef{Name: name}, nil
	case p.accept(TokSymbol, "("):
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("expected expression, found %q", t.Text)
	}
}

func (p *parser) caseExpr() (Expr, error) {
	p.next() // CASE
	c := &CaseE{}
	for p.accept(TokKeyword, "WHEN") {
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.expression()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, struct{ Cond, Then Expr }{cond, then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE needs at least one WHEN")
	}
	if p.accept(TokKeyword, "ELSE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(TokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}

// qualifiedName parses ident[.ident] into "a.b" or "a".
func (p *parser) qualifiedName() (string, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return "", err
	}
	name := t.Text
	if p.accept(TokSymbol, ".") {
		t2, err := p.expect(TokIdent, "")
		if err != nil {
			return "", err
		}
		name = name + "." + t2.Text
	}
	return name, nil
}
