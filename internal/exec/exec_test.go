package exec

import (
	"fmt"
	"testing"

	"raven/internal/expr"
	"raven/internal/plan"
	"raven/internal/storage"
	"raven/internal/types"
)

func numbersTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	tb := storage.NewTable("nums", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "x", Type: types.Float},
		types.Column{Name: "grp", Type: types.String},
	))
	for i := 0; i < n; i++ {
		if err := tb.AppendRow(int64(i), float64(i)*0.5, fmt.Sprintf("g%d", i%3)); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestTableScanBatches(t *testing.T) {
	tb := numbersTable(t, 10000)
	s, err := NewTableScan(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10000 {
		t.Fatalf("rows = %d", out.Len())
	}
	// projected scan
	s2, err := NewTableScan(tb, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Collect(s2)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Schema.Len() != 1 || o2.Vecs[0].Floats[3] != 1.5 {
		t.Errorf("projected scan = %v", o2.Schema)
	}
	if _, err := NewTableScan(tb, []string{"nope"}); err == nil {
		t.Error("bad projection should fail")
	}
}

func TestTableScanRange(t *testing.T) {
	tb := numbersTable(t, 100)
	s, _ := NewTableScan(tb, nil)
	s.Lo, s.Hi = 10, 20
	out, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 || out.Vecs[0].Ints[0] != 10 {
		t.Errorf("range scan = %d rows, first id %v", out.Len(), out.Vecs[0].Ints[0])
	}
}

func TestFilterProjectLimit(t *testing.T) {
	tb := numbersTable(t, 1000)
	s, _ := NewTableScan(tb, nil)
	f := &FilterOp{Child: s, Pred: expr.NewBinary(expr.OpGe, &expr.Column{Name: "x"}, expr.FloatLit(100))}
	p, err := NewProjectOp(f, []expr.Expr{
		&expr.Column{Name: "id"},
		expr.NewBinary(expr.OpMul, &expr.Column{Name: "x"}, expr.FloatLit(2)),
	}, []string{"id", "x2"})
	if err != nil {
		t.Fatal(err)
	}
	l := &LimitOp{Child: p, N: 5}
	out, err := Collect(l)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("rows = %d", out.Len())
	}
	// first row with x >= 100 is id 200 (x = id*0.5)
	if out.Vecs[0].Ints[0] != 200 || out.Vecs[1].Floats[0] != 200 {
		t.Errorf("row0 = %v, %v", out.Vecs[0].Ints[0], out.Vecs[1].Floats[0])
	}
}

func TestHashJoin(t *testing.T) {
	left := storage.NewTable("l", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "a", Type: types.Float},
	))
	right := storage.NewTable("r", types.NewSchema(
		types.Column{Name: "rid", Type: types.Int},
		types.Column{Name: "b", Type: types.Float},
	))
	for i := 0; i < 100; i++ {
		_ = left.AppendRow(int64(i), float64(i))
	}
	for i := 50; i < 150; i++ {
		_ = right.AppendRow(int64(i), float64(i)*10)
	}
	ls, _ := NewTableScan(left, nil)
	rs, _ := NewTableScan(right, nil)
	j, err := NewHashJoin(ls, rs, "id", "rid")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 50 {
		t.Fatalf("join rows = %d, want 50", out.Len())
	}
	if out.Schema.Len() != 3 {
		t.Fatalf("join schema = %v (right key should drop)", out.Schema)
	}
	// verify a matched pair
	idv := out.Col("id")
	bv := out.Col("b")
	for i := 0; i < out.Len(); i++ {
		if bv.Floats[i] != float64(idv.Ints[i])*10 {
			t.Fatalf("mismatched join row %d", i)
		}
	}
	if _, err := NewHashJoin(ls, rs, "nope", "rid"); err == nil {
		t.Error("bad key should fail")
	}
}

func TestHashJoinDuplicateKeys(t *testing.T) {
	left := storage.NewTable("l", types.NewSchema(types.Column{Name: "k", Type: types.Int}))
	right := storage.NewTable("r", types.NewSchema(
		types.Column{Name: "k", Type: types.Int},
		types.Column{Name: "v", Type: types.Int},
	))
	_ = left.AppendRow(int64(1))
	_ = left.AppendRow(int64(2))
	_ = right.AppendRow(int64(1), int64(10))
	_ = right.AppendRow(int64(1), int64(11))
	ls, _ := NewTableScan(left, nil)
	rs, _ := NewTableScan(right, nil)
	j, _ := NewHashJoin(ls, rs, "k", "k")
	out, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("dup-key join rows = %d, want 2", out.Len())
	}
}

func TestHashAggregate(t *testing.T) {
	tb := numbersTable(t, 9) // grp g0: ids 0,3,6; g1: 1,4,7; g2: 2,5,8
	s, _ := NewTableScan(tb, nil)
	a, err := NewHashAggregate(s, []string{"grp"}, []plan.AggSpec{
		{Func: plan.AggCount, Name: "n"},
		{Func: plan.AggSum, Arg: &expr.Column{Name: "x"}, Name: "sx"},
		{Func: plan.AggAvg, Arg: &expr.Column{Name: "x"}, Name: "ax"},
		{Func: plan.AggMin, Arg: &expr.Column{Name: "id"}, Name: "mn"},
		{Func: plan.AggMax, Arg: &expr.Column{Name: "id"}, Name: "mx"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(a)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("groups = %d", out.Len())
	}
	// first-seen order: g0 first
	if out.Col("grp").Strings[0] != "g0" {
		t.Errorf("group order = %v", out.Col("grp").Strings)
	}
	if out.Col("n").Ints[0] != 3 {
		t.Errorf("count = %v", out.Col("n").Ints)
	}
	// g0 x values: 0, 1.5, 3 -> sum 4.5, avg 1.5
	if out.Col("sx").Floats[0] != 4.5 || out.Col("ax").Floats[0] != 1.5 {
		t.Errorf("sum/avg = %v / %v", out.Col("sx").Floats[0], out.Col("ax").Floats[0])
	}
	if out.Col("mn").Ints[0] != 0 || out.Col("mx").Ints[0] != 6 {
		t.Errorf("min/max = %v / %v", out.Col("mn").Ints[0], out.Col("mx").Ints[0])
	}
}

func TestRunSortOrders(t *testing.T) {
	tb := numbersTable(t, 10)
	s, _ := NewTableScan(tb, nil)
	so, err := NewRunSort(&StreamMorselSource{Op: s}, 1, []SortKeySpec{{Col: "grp"}, {Col: "id", Desc: true}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(so)
	if err != nil {
		t.Fatal(err)
	}
	// g0 group first, descending ids within: 9, 6, 3, 0
	g := out.Col("grp").Strings
	ids := out.Col("id").Ints
	if g[0] != "g0" || ids[0] != 9 || ids[3] != 0 {
		t.Errorf("sorted = %v %v", g[:4], ids[:4])
	}
}

func TestDistinctOp(t *testing.T) {
	tb := numbersTable(t, 30)
	s, _ := NewTableScan(tb, []string{"grp"})
	d := &DistinctOp{Child: s}
	out, err := Collect(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("distinct rows = %d", out.Len())
	}
}

// constPredictor appends x+bias as the prediction, for pipeline tests.
type constPredictor struct{ bias float64 }

func (p constPredictor) PredictBatch(b *types.Batch) ([]*types.Vector, error) {
	x := b.Col("x")
	out := types.NewVector(types.Float, b.Len())
	for i := range out.Floats {
		out.Floats[i] = x.Floats[i] + p.bias
	}
	return []*types.Vector{out}, nil
}

func TestPredictOp(t *testing.T) {
	tb := numbersTable(t, 100)
	s, _ := NewTableScan(tb, nil)
	p := NewPredictOp(s, constPredictor{bias: 1000}, []types.Column{{Name: "score", Type: types.Float}})
	out, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.IndexOf("score") < 0 {
		t.Fatal("score column missing")
	}
	if out.Col("score").Floats[4] != 1002 {
		t.Errorf("score[4] = %v", out.Col("score").Floats[4])
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	tb := numbersTable(t, 100000)
	build := func(lo, hi int) Operator {
		s, _ := NewTableScan(tb, nil)
		s.Lo, s.Hi = lo, hi
		f := &FilterOp{Child: s, Pred: expr.NewBinary(expr.OpGt, &expr.Column{Name: "x"}, expr.FloatLit(10))}
		return NewPredictOp(f, constPredictor{bias: 5}, []types.Column{{Name: "score", Type: types.Float}})
	}
	par := &Parallel{Parts: []Operator{build(0, 25000), build(25000, 50000), build(50000, 75000), build(75000, 100000)}}
	pout, err := Collect(par)
	if err != nil {
		t.Fatal(err)
	}
	seq := build(0, 100000)
	sout, err := Collect(seq)
	if err != nil {
		t.Fatal(err)
	}
	if pout.Len() != sout.Len() {
		t.Fatalf("parallel %d rows vs sequential %d", pout.Len(), sout.Len())
	}
	// row-order may differ across partitions; compare checksums
	var ps, ss float64
	for _, v := range pout.Col("score").Floats {
		ps += v
	}
	for _, v := range sout.Col("score").Floats {
		ss += v
	}
	if ps != ss {
		t.Errorf("checksum %v vs %v", ps, ss)
	}
}

func TestCompilePlanWithParallelism(t *testing.T) {
	tb := numbersTable(t, 200000)
	scan := plan.NewScan(tb)
	f := &plan.Filter{Child: scan, Pred: expr.NewBinary(expr.OpGt, &expr.Column{Name: "x"}, expr.FloatLit(1))}
	pr := plan.NewPredict(f, "m", []types.Column{{Name: "score", Type: types.Float}})
	env := &Env{
		Parallelism: 4,
		PredictorFactory: func(name string, in *types.Schema, out []types.Column) (Predictor, error) {
			return constPredictor{bias: 1}, nil
		},
	}
	op, err := Compile(pr, env)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*Exchange); !ok {
		t.Fatalf("compiled = %T, want *Exchange", op)
	}
	out, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 200000-3 { // x>1 excludes ids 0,1,2
		t.Errorf("rows = %d", out.Len())
	}

	// sequential compile of the same plan
	env.Parallelism = 1
	op2, err := Compile(pr, env)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op2.(*PredictOp); !ok {
		t.Fatalf("sequential compiled = %T", op2)
	}
	out2, _ := Collect(op2)
	if out2.Len() != out.Len() {
		t.Fatal("parallel and sequential row counts differ")
	}
	// the exchange merges morsels in scan order: rows must match 1:1
	for _, col := range []string{"x", "score"} {
		a, b := out.Col(col).Floats, out2.Col(col).Floats
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d]: parallel %v vs sequential %v", col, i, a[i], b[i])
			}
		}
	}
}

func TestCompileJoinAggSortLimitDistinct(t *testing.T) {
	tb := numbersTable(t, 100)
	scan := plan.NewScan(tb)
	scan2 := plan.NewScan(tb)
	j, err := plan.NewJoin(scan, scan2, "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	agg, err := plan.NewAggregate(j, []string{"grp"}, []plan.AggSpec{{Func: plan.AggCount, Name: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	var root plan.Node = &plan.Limit{Child: &plan.Sort{Child: &plan.Distinct{Child: agg}, Keys: []plan.SortKey{{Col: "n", Desc: true}}}, N: 2}
	op, err := Compile(root, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("rows = %d", out.Len())
	}
	if out.Col("n").Ints[0] != 34 { // g0 has 34 of 100 ids (0,3,...,99)
		t.Errorf("top group count = %v", out.Col("n").Ints[0])
	}
}

func TestCompilePredictWithoutFactory(t *testing.T) {
	tb := numbersTable(t, 10)
	pr := plan.NewPredict(plan.NewScan(tb), "m", []types.Column{{Name: "s", Type: types.Float}})
	if _, err := Compile(pr, &Env{}); err == nil {
		t.Error("PREDICT without factory should fail")
	}
}

func TestParallelErrorPropagation(t *testing.T) {
	tb := numbersTable(t, 100000)
	s, _ := NewTableScan(tb, nil)
	bad := &FilterOp{Child: s, Pred: &expr.Column{Name: "x"}} // non-bool predicate
	good, _ := NewTableScan(tb, nil)
	par := &Parallel{Parts: []Operator{good, bad}}
	if err := par.Open(); err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	var firstErr error
	for {
		b, err := par.Next()
		if err != nil {
			firstErr = err
			break
		}
		if b == nil {
			t.Fatal("error inside parallel worker should surface, got clean EOF")
		}
	}
	// Latched: re-polling must keep failing, not resume the healthy part.
	if _, err := par.Next(); err == nil {
		t.Error("re-poll after failure should return the latched error")
	} else if err.Error() != firstErr.Error() {
		t.Errorf("re-poll error = %v, want %v", err, firstErr)
	}
}
