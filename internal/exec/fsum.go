package exec

import "math"

// exactFloatSum accumulates float64 values exactly. It keeps the running
// total as a Shewchuk expansion: a list of non-overlapping partials in
// increasing magnitude whose exact (real-number) sum equals the sum of
// every value added so far. Round returns that exact value correctly
// rounded to the nearest float64.
//
// Because the expansion represents the exact sum, the rounded result is a
// function of the value set alone — independent of the order values were
// added in and of how the input was split across partial accumulators.
// That property is what lets two-phase parallel aggregation promise
// byte-identical SUM/AVG results for any DOP and any morsel decomposition:
// floating-point addition is not associative, so naive per-worker partial
// sums would differ from the serial plan in the low bits.
//
// Boundary: the invariance guarantee holds as long as every accumulator's
// running total stays within float64 range (|sum| <= MaxFloat64 ≈
// 1.8e308). If a partial's total overflows, that accumulator saturates to
// ±Inf — deterministic for a given decomposition, but a different split
// of the same rows might avoid the overflow, so at that extreme the
// result can depend on DOP. Removing this caveat would need an
// exponent-extended superaccumulator, which the engine's workloads
// (bounded ML features and measures) do not justify.
//
// The zero value is an empty sum, ready to use.
type exactFloatSum struct {
	// partials is the expansion: non-overlapping, sorted by increasing
	// magnitude, exact sum of everything accumulated.
	partials []float64
	// special accumulates non-finite inputs (and overflow residue), which
	// the expansion arithmetic cannot represent. IEEE addition of infs and
	// NaNs is order-insensitive for our purposes: any NaN poisons the
	// result and opposing infinities combine to NaN.
	special float64
}

// Add folds x into the sum exactly. If this accumulator's running total
// leaves float64 range the sum saturates to ±Inf (IEEE semantics,
// matching what naive accumulation would return); see the type comment
// for the order-invariance boundary that implies.
func (s *exactFloatSum) Add(x float64) {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		s.special += x
		return
	}
	// Grow-expansion (Shewchuk): carry x up through the partials with
	// exact two-sum steps, keeping every non-zero rounding error.
	out := s.partials[:0]
	for _, y := range s.partials {
		if math.Abs(x) < math.Abs(y) {
			x, y = y, x
		}
		hi := x + y
		if math.IsInf(hi, 0) {
			// Overflow: lo would be garbage (Inf-Inf = NaN) — latch the
			// saturated value instead of corrupting the expansion.
			s.special += hi
			s.partials = s.partials[:0]
			return
		}
		lo := y - (hi - x)
		if lo != 0 {
			out = append(out, lo)
		}
		x = hi
	}
	s.partials = append(out, x)
}

// Merge folds another accumulator into s. The partials of o sum exactly to
// o's value, so adding them one by one preserves exactness.
func (s *exactFloatSum) Merge(o *exactFloatSum) {
	for _, p := range o.partials {
		s.Add(p)
	}
	if o.special != 0 { // NaN != 0, so this covers NaN too
		s.special += o.special
	}
}

// Round returns the accumulated sum correctly rounded to float64 (the
// algorithm of Python's math.fsum tail), or the special value if any
// non-finite input was seen.
func (s *exactFloatSum) Round() float64 {
	if s.special != 0 { // NaN != 0, so a NaN special is returned too
		return s.special
	}
	n := len(s.partials)
	if n == 0 {
		return 0
	}
	hi := s.partials[n-1]
	var lo float64
	i := n - 1
	for i > 0 {
		x := hi
		y := s.partials[i-1]
		i--
		hi = x + y
		yr := hi - x
		lo = y - yr
		if lo != 0 {
			break
		}
	}
	// Round-half-even correction: if the discarded tail would flip the
	// rounding of hi, apply it. Mirrors CPython's fsum.
	if i > 0 && ((lo < 0 && s.partials[i-1] < 0) || (lo > 0 && s.partials[i-1] > 0)) {
		y := lo * 2
		x := hi + y
		if yr := x - hi; y == yr {
			hi = x
		}
	}
	return hi
}
