package pyanal

import (
	"fmt"

	"raven/internal/ml"
	"raven/internal/train"
)

// Fit turns the statically-recovered pipeline structure into a fitted
// ml.Pipeline by training on the provided sample — the bridge between the
// script the data scientist wrote and the executable model pipeline Raven
// stores (paper §1: model + preprocessing + dependencies form the stored
// unit).
func (s *Spec) Fit(x ml.Matrix, y []float64, seed int64) (*ml.Pipeline, error) {
	feats, modelSpec, err := s.Steps()
	if err != nil {
		return nil, err
	}
	pipe := &ml.Pipeline{InputColumns: append([]string(nil), s.InputColumns...)}
	cur := x
	for _, f := range feats {
		var t ml.Transformer
		switch f.Kind {
		case "scaler":
			t = ml.FitScaler(cur)
		case "onehot":
			// categorical_cols param lists column ordinals packed as a
			// float (c0*1 + c1*100...) is too clever; instead the KB
			// convention is that OneHotEncoder applies to the trailing
			// "cat_cols" ordinals given via the categorical_cols kwarg
			// count, defaulting to none (identity would be useless), so we
			// detect integer-coded columns: ones whose sampled values are
			// all integral with small cardinality.
			cols := detectCategorical(cur)
			if n, ok := f.Params["n_categorical"]; ok && int(n) <= cur.Cols {
				cols = trailing(cur.Cols, int(n))
			}
			if len(cols) == 0 {
				return nil, fmt.Errorf("pyanal: OneHotEncoder found no categorical columns")
			}
			t = ml.FitOneHot(cur, cols)
		case "udf":
			return nil, fmt.Errorf("pyanal: pipeline contains untranslatable step %q (UDF); use external execution", f.UDFName)
		default:
			return nil, fmt.Errorf("pyanal: unsupported featurizer %q", f.Kind)
		}
		pipe.Steps = append(pipe.Steps, t)
		cur, err = t.Transform(cur)
		if err != nil {
			return nil, err
		}
	}
	param := func(name string, def float64) float64 {
		if v, ok := modelSpec.Params[name]; ok {
			return v
		}
		return def
	}
	switch modelSpec.Kind {
	case "tree":
		pipe.Final = train.FitTree(cur, y, train.TreeOptions{
			MaxDepth: int(param("max_depth", 8)),
			MinLeaf:  int(param("min_samples_leaf", 8)),
		})
	case "forest":
		pipe.Final = train.FitForest(cur, y, train.ForestOptions{
			NumTrees: int(param("n_estimators", 10)),
			Seed:     seed,
			Tree: train.TreeOptions{
				MaxDepth: int(param("max_depth", 8)),
				MinLeaf:  int(param("min_samples_leaf", 8)),
			},
		})
	case "logreg":
		// sklearn's C is inverse regularization strength; penalty l1 maps
		// to our proximal L1 with strength 1/C.
		l1 := 0.0
		if c := param("C", 0); c > 0 {
			l1 = 1 / c
		}
		pipe.Final = train.FitLogReg(cur, y, train.LogRegOptions{L1: l1, Seed: seed})
	case "linreg":
		lr := train.FitLogReg(cur, y, train.LogRegOptions{Seed: seed})
		pipe.Final = &ml.LinearRegression{W: lr.W, B: lr.B}
	case "mlp":
		hidden := []int{int(param("hidden_layer_sizes", 16))}
		pipe.Final = train.FitMLP(cur, y, train.MLPOptions{
			Hidden:     hidden,
			Epochs:     int(param("max_iter", 10)),
			Seed:       seed,
			Classifier: true,
		})
	default:
		return nil, fmt.Errorf("pyanal: unsupported model kind %q", modelSpec.Kind)
	}
	return pipe, nil
}

// detectCategorical flags columns whose values are all integral with at
// most 32 distinct values.
func detectCategorical(x ml.Matrix) []int {
	var out []int
	for j := 0; j < x.Cols; j++ {
		distinct := make(map[float64]bool)
		ok := true
		for i := 0; i < x.Rows; i++ {
			v := x.At(i, j)
			if v != float64(int64(v)) {
				ok = false
				break
			}
			distinct[v] = true
			if len(distinct) > 32 {
				ok = false
				break
			}
		}
		// binary 0/1 columns are already usable as features; only encode
		// multi-valued codes
		if ok && len(distinct) > 2 {
			out = append(out, j)
		}
	}
	return out
}

func trailing(width, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = width - n + i
	}
	return out
}
