module raven

go 1.24
