// Command ravenrouter fronts N ravenserved replicas with one serving
// endpoint speaking the same wire protocol as a single replica — point
// any raven client at the router and it sees one bigger, more available
// server.
//
// Usage:
//
//	ravenrouter [-addr :8090] -replica name=http://host:port ...
//	            [-probe-interval D] [-probe-timeout D] [-fail-threshold N]
//	            [-spill-queue N] [-retries N] [-hedge]
//	            [-result-cache-bytes N] [-selftest]
//
// The router health-checks every replica on a jittered interval and
// converges membership (healthy / degraded / draining / down). Reads
// route by rendezvous-hashed tenant affinity — a tenant's queries keep
// hitting the same replica, so its plan cache and statement registry
// stay warm — spilling to the least-loaded healthy replica when the
// home's admission queue is saturated, with per-replica retries
// (exponential backoff + jitter) and optional hedging (-hedge) once the
// observed p99 is known. Side-effect scripts (POST /query without a
// SELECT) and stored models (POST /model) replicate to every replica
// through an ordered log with catalog-version read-back; replicas that
// restart or miss entries are repaired by replay before they take
// traffic again. Prepared statements get router-side ids, prepared
// lazily per replica and re-prepared transparently after a replica
// restart. GET /stats aggregates the whole cluster; GET /healthz is 200
// while at least one replica is routable.
//
// -selftest stands up two in-process replicas plus the router and runs
// the cluster smoke against them (the `make smoke-cluster` CI gate).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"raven/internal/cluster"
	"raven/internal/server"
)

// replicaFlags collects repeatable -replica flags: name=base, or a bare
// base URL (named replica1, replica2, ... in order).
type replicaFlags []struct{ name, base string }

func (f *replicaFlags) String() string {
	var parts []string
	for _, r := range *f {
		parts = append(parts, r.name+"="+r.base)
	}
	return strings.Join(parts, ",")
}

func (f *replicaFlags) Set(v string) error {
	name, base, ok := strings.Cut(v, "=")
	if !ok {
		name, base = fmt.Sprintf("replica%d", len(*f)+1), v
	}
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	*f = append(*f, struct{ name, base string }{name, base})
	return nil
}

func main() {
	addr := flag.String("addr", ":8090", "listen address (host:port)")
	probeInterval := flag.Duration("probe-interval", 250*time.Millisecond, "replica health-probe interval (jittered ±25%)")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "bound on one probe/reconcile pass")
	failThreshold := flag.Int("fail-threshold", 2, "consecutive probe failures before a replica is marked down")
	spillQueue := flag.Int("spill-queue", 4, "home-replica admission-queue depth at which tenant traffic spills to the least-loaded replica")
	retries := flag.Int("retries", 3, "attempts per idempotent read across replicas (exponential backoff + jitter between attempts)")
	hedge := flag.Bool("hedge", false, "hedge slow reads: race a second replica after the observed p99 latency")
	resultCacheBytes := flag.Int64("result-cache-bytes", 0, "router response cache budget in bytes: repeated idempotent reads are answered without a replica round-trip until the next replicated side effect (0 = off)")
	selftest := flag.Bool("selftest", false, "run the in-process cluster smoke and exit")
	var replicas replicaFlags
	flag.Var(&replicas, "replica", "replica to front, as name=http://host:port or a bare URL (repeatable)")
	flag.Parse()

	if *selftest {
		if err := cluster.Smoke(); err != nil {
			fmt.Fprintln(os.Stderr, "selftest FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("selftest ok")
		return
	}
	if len(replicas) == 0 {
		fmt.Fprintln(os.Stderr, "no replicas: pass at least one -replica name=http://host:port")
		os.Exit(2)
	}

	rt := cluster.New(cluster.Options{
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		FailThreshold:    *failThreshold,
		SpillQueueDepth:  *spillQueue,
		Retry:            server.RetryPolicy{MaxAttempts: *retries},
		Hedge:            *hedge,
		ResultCacheBytes: *resultCacheBytes,
	})
	for _, r := range replicas {
		if err := rt.AddMember(r.name, r.base); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	rt.Start()
	defer rt.Close()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ravenrouter listening on %s, fronting %d replicas (probe=%v hedge=%v)\n",
		l.Addr(), len(replicas), *probeInterval, *hedge)

	srv := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	case s := <-sig:
		// The router holds no query state worth draining — replicas do
		// their own graceful drains — so closing the listener (which
		// waits for nothing) and letting in-flight proxies finish via
		// Shutdown is enough.
		fmt.Fprintf(os.Stderr, "%v: shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
			os.Exit(1)
		}
		<-serveErr
	}
}
