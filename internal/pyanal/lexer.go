// Package pyanal is Raven's Static Analyzer (paper §3.2): it lexes and
// parses Python model-pipeline scripts (the straight-line subset that
// covers the vast majority of notebook code per the paper's 4.6M-notebook
// study), extracts the dataflow, and maps data-science API calls onto
// unified-IR operators through a knowledge base of sklearn/pandas
// signatures. Constructs it cannot translate become UDF steps; loops and
// conditionals are reported, matching the paper's stated limitations.
package pyanal

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokName
	tokNumber
	tokString
	tokSymbol
	tokNewline
)

type token struct {
	kind tokKind
	text string
	line int
}

// lex tokenizes a Python-subset script. Indentation is not tracked (the
// analyzer accepts straight-line top-level statements only); comments and
// blank lines are skipped; newlines inside brackets are suppressed, as in
// Python.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	depth := 0 // bracket nesting
	i, n := 0, len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
			if depth == 0 {
				if len(toks) > 0 && toks[len(toks)-1].kind != tokNewline {
					toks = append(toks, token{kind: tokNewline, line: line})
				}
			}
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '\\' && i+1 < n && src[i+1] == '\n': // line continuation
			line++
			i += 2
		case isNameStart(rune(c)):
			start := i
			for i < n && isNamePart(rune(src[i])) {
				i++
			}
			toks = append(toks, token{kind: tokName, text: src[start:i], line: line})
		case c >= '0' && c <= '9':
			start := i
			for i < n && (src[i] >= '0' && src[i] <= '9' || src[i] == '.' || src[i] == 'e' || src[i] == '-' && (src[i-1] == 'e')) {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: src[start:i], line: line})
		case c == '\'' || c == '"':
			quote := c
			// triple-quoted strings
			if i+2 < n && src[i+1] == quote && src[i+2] == quote {
				end := strings.Index(src[i+3:], string([]byte{quote, quote, quote}))
				if end < 0 {
					return nil, fmt.Errorf("pyanal: unterminated triple-quoted string at line %d", line)
				}
				body := src[i+3 : i+3+end]
				line += strings.Count(body, "\n")
				toks = append(toks, token{kind: tokString, text: body, line: line})
				i += 3 + end + 3
				continue
			}
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if src[i] == '\\' && i+1 < n {
					sb.WriteByte(src[i+1])
					i += 2
					continue
				}
				if src[i] == quote {
					closed = true
					i++
					break
				}
				if src[i] == '\n' {
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("pyanal: unterminated string at line %d", line)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), line: line})
		default:
			switch c {
			case '(', '[', '{':
				depth++
				toks = append(toks, token{kind: tokSymbol, text: string(c), line: line})
				i++
			case ')', ']', '}':
				depth--
				toks = append(toks, token{kind: tokSymbol, text: string(c), line: line})
				i++
			case ',', '=', '.', ':', '*', '+', '-', '/', '<', '>', '%':
				toks = append(toks, token{kind: tokSymbol, text: string(c), line: line})
				i++
			default:
				return nil, fmt.Errorf("pyanal: unexpected character %q at line %d", c, line)
			}
		}
	}
	toks = append(toks, token{kind: tokNewline, line: line})
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func isNameStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isNamePart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
