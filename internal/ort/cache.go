package ort

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"raven/internal/tensor"
)

// SessionCache keys compiled sessions by model content hash. It reproduces
// SQL Server's model/inference-session caching across queries (paper §5,
// observation ii: 3 ms vs 20 ms on 100 tuples because the standalone
// runtime reloads the model from disk while the DB serves a cached session).
//
// Compiles run outside the cache-wide mutex under per-key singleflight
// entries, so concurrent queries compiling different models never
// serialize, and a thundering herd on one model runs build exactly once
// while the rest wait on that entry alone.
type SessionCache struct {
	mu       sync.Mutex
	sessions map[string]*cacheEntry
	hits     int
	misses   int
}

// cacheEntry is one key's in-flight or completed compile. ready is closed
// when s/err are final.
type cacheEntry struct {
	ready chan struct{}
	s     *Session
	err   error
}

// NewSessionCache returns an empty cache.
func NewSessionCache() *SessionCache {
	return &SessionCache{sessions: make(map[string]*cacheEntry)}
}

// Get returns the cached session for key, or compiles one via build and
// caches it. Only the first caller for a key runs build; concurrent
// callers block on that key's entry (counted as hits — they avoided a
// compile) without holding the cache lock. A failed build is evicted so a
// later call can retry.
func (c *SessionCache) Get(key string, build func() (*Session, error)) (*Session, error) {
	c.mu.Lock()
	if e, ok := c.sessions[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.ready
		return e.s, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.sessions[key] = e
	c.misses++
	c.mu.Unlock()

	// A panicking build must still publish a result and evict the entry,
	// or every waiter (and all future Gets for the key) would block on
	// ready forever. The panic itself propagates to the caller.
	completed := false
	defer func() {
		if !completed {
			e.err = fmt.Errorf("ort: session build for key %q panicked", key)
			close(e.ready)
			c.evict(key, e)
		}
	}()
	e.s, e.err = build()
	completed = true
	close(e.ready)
	if e.err != nil {
		c.evict(key, e)
	}
	return e.s, e.err
}

// evict removes e from the cache — only if it is still the entry installed
// under key: an Invalidate+Get race may have replaced it already.
func (c *SessionCache) evict(key string, e *cacheEntry) {
	c.mu.Lock()
	if c.sessions[key] == e {
		delete(c.sessions, key)
	}
	c.mu.Unlock()
}

// Invalidate drops the cached session for key (model updated in the store).
func (c *SessionCache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.sessions, key)
}

// Stats returns (hits, misses).
func (c *SessionCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached sessions.
func (c *SessionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sessions)
}

// serializable mirrors Graph for gob: maps with interface values need
// registration, so attrs are encoded via a concrete holder.
type gobGraph struct {
	Name        string
	Nodes       []gobNode
	Inputs      []string
	Outputs     []string
	InitNames   []string
	InitTensors []tensor.Tensor
}

type gobNode struct {
	Op      string
	Name    string
	Inputs  []string
	Outputs []string
	AttrK   []string
	AttrV   []gobAttr
}

type gobAttr struct {
	Kind byte // 'f' float, 'i' int, 'I' []int, 's' string
	F    float64
	I    int
	IS   []int
	S    string
}

// Marshal serializes a graph to bytes (the model format stored in the
// database model store).
func Marshal(g *Graph) ([]byte, error) {
	gg := gobGraph{Name: g.Name, Inputs: g.Inputs, Outputs: g.Outputs}
	for name, t := range g.Initializers {
		gg.InitNames = append(gg.InitNames, name)
		gg.InitTensors = append(gg.InitTensors, *t)
	}
	for _, n := range g.Nodes {
		gn := gobNode{Op: n.Op, Name: n.Name, Inputs: n.Inputs, Outputs: n.Outputs}
		for k, v := range n.Attrs {
			gn.AttrK = append(gn.AttrK, k)
			switch x := v.(type) {
			case float64:
				gn.AttrV = append(gn.AttrV, gobAttr{Kind: 'f', F: x})
			case int:
				gn.AttrV = append(gn.AttrV, gobAttr{Kind: 'i', I: x})
			case []int:
				gn.AttrV = append(gn.AttrV, gobAttr{Kind: 'I', IS: x})
			case string:
				gn.AttrV = append(gn.AttrV, gobAttr{Kind: 's', S: x})
			}
		}
		gg.Nodes = append(gg.Nodes, gn)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gg); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal reverses Marshal.
func Unmarshal(data []byte) (*Graph, error) {
	var gg gobGraph
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&gg); err != nil {
		return nil, err
	}
	g := NewGraph(gg.Name)
	g.Inputs = gg.Inputs
	g.Outputs = gg.Outputs
	for i, name := range gg.InitNames {
		t := gg.InitTensors[i]
		g.Initializers[name] = &t
	}
	for _, gn := range gg.Nodes {
		attrs := make(Attrs, len(gn.AttrK))
		for i, k := range gn.AttrK {
			a := gn.AttrV[i]
			switch a.Kind {
			case 'f':
				attrs[k] = a.F
			case 'i':
				attrs[k] = a.I
			case 'I':
				attrs[k] = a.IS
			case 's':
				attrs[k] = a.S
			}
		}
		g.Nodes = append(g.Nodes, &Node{Op: gn.Op, Name: gn.Name, Inputs: gn.Inputs, Outputs: gn.Outputs, Attrs: attrs})
	}
	return g, nil
}
