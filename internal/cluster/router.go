package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"raven/internal/rescache"
	"raven/internal/server"
)

// Options tunes the router.
type Options struct {
	// ProbeInterval is the reconciler's base tick (default 250ms); each
	// tick is jittered ±25% so probe bursts never synchronize.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s). Repair replays
	// triggered by a probe run under ApplyTimeout per entry instead, so
	// a replica with a long log to catch up on is not required to do it
	// inside one probe budget.
	ProbeTimeout time.Duration
	// ApplyTimeout bounds applying a single replication-log entry to one
	// replica (default 2m) — fan-out and reconciler repair both. Slow
	// entries (a long TRAIN, a large model upload) need a budget
	// decoupled from probe cadence and the general ClientTimeout.
	ApplyTimeout time.Duration
	// FailThreshold is how many consecutive probe failures mark a
	// member down (default 2 — one blip is a restarting listener).
	FailThreshold int
	// SpillQueueDepth: when the home replica's probed admission queue is
	// at least this deep, the tenant's queries spill to the least-loaded
	// healthy replica instead (default 4; affinity is a warm-cache
	// optimization, not a correctness constraint).
	SpillQueueDepth int
	// Retry is the per-replica retry policy for idempotent reads and
	// replication (zero value = server.DefaultRetry).
	Retry server.RetryPolicy
	// Hedge enables hedged reads: if a routed query's response header
	// has not arrived within the observed p99 latency, the same request
	// is raced on the next-ranked healthy replica and the first response
	// wins. Reads only — side effects never hedge.
	Hedge bool
	// HedgeMinSamples gates hedging until the latency window has seen
	// enough reads to estimate a p99 (default 16).
	HedgeMinSamples int
	// ClientTimeout bounds probe/replication requests (default 5s).
	// Routed queries are bounded by the caller's own deadline instead.
	ClientTimeout time.Duration
	// ResultCacheBytes enables the router's response cache: that many
	// bytes of serialized read responses, keyed by (replication-log seq,
	// tenant, statement, parameters) and cleared on every log append. A
	// hit is served from the router without touching a replica — no
	// round-trip, no retry, no hedge. 0 leaves it off.
	ResultCacheBytes int64
	// HTTP overrides the transport (tests); nil uses a dedicated client.
	HTTP *http.Client
}

func (o Options) withDefaults() Options {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.ApplyTimeout <= 0 {
		o.ApplyTimeout = 2 * time.Minute
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.SpillQueueDepth <= 0 {
		o.SpillQueueDepth = 4
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = 16
	}
	if o.ClientTimeout <= 0 {
		o.ClientTimeout = 5 * time.Second
	}
	if o.HTTP == nil {
		o.HTTP = &http.Client{}
	}
	return o
}

// Router fronts N ravenserved replicas with the replica wire protocol:
// POST /query, /prepare, /stmt/{id}/query, DELETE /stmt/{id}, POST
// /model, GET /healthz and GET /stats (the last aggregated across the
// cluster). Reads route by tenant affinity with spill-over, retry and
// optional hedging; side effects replicate to every member through the
// ordered log. Create with New, register replicas with AddMember, run
// the reconciler with Start, serve Handler().
type Router struct {
	opts Options
	mux  *http.ServeMux

	mu      sync.Mutex
	members map[string]*member
	names   []string // sorted member names (rank input)
	log     []logEntry
	logSeq  uint64
	stmts   map[string]*routerStmt
	nextID  uint64

	// replMu serializes replications: validate-on-one, append, fan-out
	// is one critical section, so the validating replica's position and
	// the new entry's seq cannot be interleaved by a concurrent DDL.
	replMu sync.Mutex

	lat latWindow

	stop     chan struct{}
	loopDone chan struct{}
	started  atomic.Bool
	closed   atomic.Bool

	routed, spilled, retried atomic.Uint64
	hedged, hedgeWins        atomic.Uint64
	reprepared, repairs      atomic.Uint64
	skipped                  atomic.Uint64

	// respCache holds fully-buffered read responses (nil = disabled).
	// Entries validate against the replication-log seq they were captured
	// under, and the whole cache is cleared on every log append — the
	// router's side effects are exactly the log, so "log unchanged" is
	// "every replica read set unchanged".
	respCache *rescache.Cache[*cachedResponse]
}

// cachedResponse is one buffered upstream read response. The log seq it
// was captured under lives in its key, not here — see respCacheKey.
type cachedResponse struct {
	replica     string
	contentType string
	body        []byte
}

// routerStmt is a router-side prepared statement: the prepare request
// is kept verbatim and replayed lazily, once per replica, on first use
// there (and again after a replica restart wipes its registry).
type routerStmt struct {
	id  string
	req server.QueryRequest
	// params is the compiled parameter list, identical on every replica;
	// set exactly once by whichever prepare lands first.
	paramsOnce sync.Once
	params     []string
}

// New builds a Router. Call AddMember for each replica, then Start.
func New(opts Options) *Router {
	rt := &Router{
		opts:     opts.withDefaults(),
		members:  make(map[string]*member),
		stmts:    make(map[string]*routerStmt),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	if rt.opts.ResultCacheBytes > 0 {
		rt.respCache = rescache.New[*cachedResponse](rt.opts.ResultCacheBytes, 0)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", rt.handleQuery)
	mux.HandleFunc("POST /prepare", rt.handlePrepare)
	mux.HandleFunc("POST /stmt/{id}/query", rt.handleStmtQuery)
	mux.HandleFunc("DELETE /stmt/{id}", rt.handleStmtDelete)
	mux.HandleFunc("POST /model", rt.handleStoreModel)
	mux.HandleFunc("GET /stats", rt.handleStats)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux = mux
	return rt
}

// Handler returns the router's route table.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Start launches the reconciler loop. Idempotent.
func (rt *Router) Start() {
	if rt.started.CompareAndSwap(false, true) {
		go rt.run()
	}
}

// Close stops the reconciler loop and waits for it. Idempotent.
func (rt *Router) Close() {
	if rt.closed.CompareAndSwap(false, true) {
		close(rt.stop)
		if !rt.started.Load() {
			close(rt.loopDone)
			return
		}
		<-rt.loopDone
	}
}

// AddMember registers a replica under a stable name. The member starts
// Unknown; run ProbeNow (or wait a probe interval) to make it routable.
func (rt *Router) AddMember(name, base string) error {
	m := &member{
		name:  name,
		base:  strings.TrimRight(base, "/"),
		c:     &server.Client{Base: strings.TrimRight(base, "/"), HTTP: rt.opts.HTTP, Timeout: rt.opts.ClientTimeout},
		stmts: make(map[string]string),
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, dup := rt.members[name]; dup {
		return fmt.Errorf("member %q already registered", name)
	}
	rt.members[name] = m
	rt.names = append(rt.names, name)
	sort.Strings(rt.names)
	return nil
}

// RemoveMember drops a replica from the desired set. In-flight queries
// on it finish; nothing new routes there.
func (rt *Router) RemoveMember(name string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.members, name)
	for i, n := range rt.names {
		if n == name {
			rt.names = append(rt.names[:i], rt.names[i+1:]...)
			break
		}
	}
}

// snapshotMembers returns the registered members in name order.
func (rt *Router) snapshotMembers() []*member {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*member, 0, len(rt.names))
	for _, n := range rt.names {
		out = append(out, rt.members[n])
	}
	return out
}

// HomeFor returns the name of a tenant's home replica (rank 0 over the
// full member set, routable or not). Tests use it to construct tenants
// pinned to a chosen replica.
func (rt *Router) HomeFor(tenant string) string {
	rt.mu.Lock()
	names := append([]string(nil), rt.names...)
	rt.mu.Unlock()
	if len(names) == 0 {
		return ""
	}
	return rankMembers(tenant, names)[0]
}

// targetsFor returns the routable members for a tenant in try-order:
// the rendezvous home first, unless its probed queue is saturated, in
// which case the least-loaded routable member leads (spill-over) and
// the rest follow in rank order as retry fallbacks.
func (rt *Router) targetsFor(tenant string) []*member {
	rt.mu.Lock()
	names := append([]string(nil), rt.names...)
	members := make(map[string]*member, len(rt.members))
	for n, m := range rt.members {
		members[n] = m
	}
	rt.mu.Unlock()

	var routable []*member
	for _, n := range rankMembers(tenant, names) {
		if m := members[n]; m != nil && m.routable() {
			routable = append(routable, m)
		}
	}
	if len(routable) < 2 {
		return routable
	}
	home := routable[0]
	if home.lastHealth().Queue < rt.opts.SpillQueueDepth {
		return routable
	}
	// Home saturated: lead with the least-loaded routable member
	// (probed queue plus what this router has in flight there — the
	// probe can be a tick stale).
	best, bestLoad := 0, int64(1<<62)
	for i, m := range routable {
		load := int64(m.lastHealth().Queue) + m.inflight.Load()
		if load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best != 0 {
		rt.spilled.Add(1)
		routable[0], routable[best] = routable[best], routable[0]
	}
	return routable
}

// requestTenant mirrors the server's precedence: header beats body.
func requestTenant(r *http.Request, body string) string {
	if h := r.Header.Get("X-Raven-Tenant"); h != "" {
		return h
	}
	return body
}

// ---- response cache ----

// respCacheKey builds a read's cache identity. The replication-log seq
// leads the key (captured at request start, before any replica
// executes): the router's only side-effect channel is the log, so a
// response captured under seq N is valid exactly while the head is
// still N — an append mid-flight strands the entry under a key nothing
// will ever look up again. Fields are length-prefixed so values cannot
// smuggle separators and collide two requests onto one key.
func respCacheKey(seq uint64, kind, tenant, stmt string, params map[string]string, opts *server.QueryOptions) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "s%d|%s|%d:%s|%d:%s", seq, kind, len(tenant), tenant, len(stmt), stmt)
	names := make([]string, 0, len(params))
	for k := range params {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&sb, "|%d:%s=%d:%s", len(k), k, len(params[k]), params[k])
	}
	if opts != nil {
		if b, err := json.Marshal(opts); err == nil {
			sb.WriteString("|o=")
			sb.Write(b)
		}
	}
	return sb.String()
}

// cacheableRead mirrors the engine's result-cache gate at the wire:
// every statement is a SELECT or DECLARE. Stricter than the router's
// side-effect scan on purpose — a script the engine itself would not
// cache is not worth a router entry either.
func cacheableRead(sql string) bool {
	for _, stmt := range strings.Split(sql, ";") {
		s := strings.TrimSpace(stmt)
		if s == "" {
			continue
		}
		i := 0
		for i < len(s) && (s[i] == '_' || s[i] >= 'a' && s[i] <= 'z' || s[i] >= 'A' && s[i] <= 'Z') {
			i++
		}
		switch strings.ToUpper(s[:i]) {
		case "SELECT", "DECLARE":
		default:
			return false
		}
	}
	return true
}

// respCacheServe writes a cached response if one exists for key,
// reporting whether it did. A hit costs no replica round-trip, no
// retry and no hedge; the X-Raven-Cache header makes it visible.
func (rt *Router) respCacheServe(w http.ResponseWriter, key string) bool {
	e, ok := rt.respCache.Get(key, nil)
	if !ok {
		return false
	}
	w.Header().Set("Content-Type", e.contentType)
	w.Header().Set("X-Raven-Replica", e.replica)
	w.Header().Set("X-Raven-Cache", "hit")
	w.WriteHeader(http.StatusOK)
	w.Write(e.body)
	return true
}

// cappedTee relays to w while accumulating a copy, abandoning the copy
// (not the relay) the moment it crosses cap — an oversize response
// streams through at full speed without the router holding all of it.
type cappedTee struct {
	w          io.Writer
	buf        bytes.Buffer
	cap        int64
	overflowed bool
}

func (t *cappedTee) Write(p []byte) (int, error) {
	if !t.overflowed {
		if int64(t.buf.Len()+len(p)) > t.cap {
			t.overflowed = true
			t.buf.Reset()
		} else {
			t.buf.Write(p)
		}
	}
	return t.w.Write(p)
}

// streamComplete reports whether a buffered NDJSON read response ended
// in a trailer line. A stream that broke after the 200 status was on
// the wire ends in an {"error": ...} line instead; caching that would
// replay the failure from then on.
func streamComplete(body []byte) bool {
	b := bytes.TrimRight(body, "\r\n \t")
	i := bytes.LastIndexByte(b, '\n')
	return bytes.HasPrefix(b[i+1:], []byte(`{"rows"`))
}

// ---- read path: streaming proxy with retry + hedging ----

// flushWriter flushes after every write so NDJSON rows stream through
// the router instead of buffering.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

// attempt is one upstream try: the response (any status) or a
// transport error.
type attempt struct {
	m      *member
	resp   *http.Response
	err    error
	cancel context.CancelFunc
	// applied is the member's replication progress snapshotted before
	// the request was dispatched. A response is only cacheable when this
	// is at least the log seq in its cache key: during a write fan-out
	// the log head has already moved but a healthy-looking member may
	// not have applied the new entry yet, and a read it serves in that
	// window is pre-write data that must not be cached under the
	// post-write seq.
	applied uint64
}

func (a *attempt) discard() {
	if a.resp != nil {
		io.Copy(io.Discard, a.resp.Body)
		a.resp.Body.Close()
	}
	if a.cancel != nil {
		a.cancel()
	}
}

// tryMember issues the request to one member and waits for the
// response header. The client's admission headers are forwarded: the
// replica gives X-Raven-Tenant / X-Raven-Priority precedence over the
// body exactly so a fronting proxy can tag untrusted clients, and this
// router is that proxy — dropping them would route by the header tenant
// while the replica admits and bills the (often empty) body tenant.
func (rt *Router) tryMember(ctx context.Context, m *member, path string, body []byte, hdr http.Header) attempt {
	actx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(actx, http.MethodPost, m.base+path, bytes.NewReader(body))
	if err != nil {
		cancel()
		return attempt{m: m, err: err, cancel: func() {}}
	}
	req.Header.Set("Content-Type", "application/json")
	if hdr != nil {
		for _, h := range []string{"X-Raven-Tenant", "X-Raven-Priority"} {
			if v := hdr.Get(h); v != "" {
				req.Header.Set(h, v)
			}
		}
	}
	applied := m.appliedSeq.Load()
	m.inflight.Add(1)
	resp, err := rt.opts.HTTP.Do(req)
	m.inflight.Add(-1)
	return attempt{m: m, resp: resp, err: err, cancel: cancel, applied: applied}
}

// retryableStatus: pre-execution admission rejections. A 503 from a
// draining replica and a 429 from a full queue both mean the query was
// refused before any work ran, so re-routing cannot duplicate it.
func retryableStatus(code int) bool {
	return code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests
}

// proxyRead routes a read to the tenant's targets with per-replica
// retry and (optionally) a hedged first attempt, then streams the
// winning response through. pathFor resolves the member-specific path —
// the prepared path differs per replica — and may error (prepare
// failed); notFound, if set, is called when a member answers 404 so the
// caller can invalidate a cached statement id before the retry.
// cacheKey, when non-empty, asks relay to capture the winning response
// into the router's response cache; cacheSeq is the log seq baked into
// that key (relay refuses to cache a response from a member that had
// not yet applied up to it).
func (rt *Router) proxyRead(w http.ResponseWriter, r *http.Request, tenant string, body []byte,
	pathFor func(ctx context.Context, m *member) (string, error), notFound func(m *member), cacheKey string, cacheSeq uint64) {

	targets := rt.targetsFor(tenant)
	if len(targets) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, server.ErrorLine{Error: "no healthy replicas"})
		return
	}
	rt.routed.Add(1)
	ctx := r.Context()
	policy := rt.opts.Retry
	attempts := policy.MaxAttempts
	if attempts < 1 {
		attempts = server.DefaultRetry.MaxAttempts
	}
	if attempts < len(targets) {
		attempts = len(targets) // a cluster-wide outage is worth one try everywhere
	}

	var last attempt
	for i := 0; i < attempts; i++ {
		if i > 0 {
			rt.retried.Add(1)
			t := time.NewTimer(policy.Backoff(i - 1))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				writeJSON(w, 499, server.ErrorLine{Error: ctx.Err().Error()})
				return
			}
		}
		m := targets[i%len(targets)]
		path, err := pathFor(ctx, m)
		if err != nil {
			last = attempt{m: m, err: err}
			if !server.Transient(err) {
				break
			}
			continue
		}
		start := time.Now()
		a := rt.tryMember(ctx, m, path, body, r.Header)
		if i == 0 && a.err == nil && a.resp != nil && a.resp.StatusCode == http.StatusOK {
			rt.lat.record(time.Since(start))
		}
		switch {
		case a.err != nil:
			a.discard()
			last = attempt{m: m, err: a.err}
			if ctx.Err() != nil {
				writeJSON(w, 499, server.ErrorLine{Error: ctx.Err().Error()})
				return
			}
			continue
		case a.resp.StatusCode == http.StatusNotFound && notFound != nil:
			a.discard()
			notFound(m)
			last = attempt{m: m, err: &server.HTTPError{Status: 404, Msg: "statement missing on replica"}}
			continue
		case retryableStatus(a.resp.StatusCode):
			a.discard()
			last = attempt{m: m, err: &server.HTTPError{Status: a.resp.StatusCode, Msg: a.resp.Status}}
			continue
		default:
			rt.relay(w, a, cacheKey, cacheSeq)
			return
		}
	}
	// All attempts failed; surface the last error with a real status.
	status := http.StatusBadGateway
	var he *server.HTTPError
	if errors.As(last.err, &he) {
		status = he.Status
	}
	msg := "no attempt completed"
	if last.err != nil {
		msg = last.err.Error()
	}
	if last.m != nil {
		msg = fmt.Sprintf("replica %s: %s", last.m.name, msg)
	}
	writeJSON(w, status, server.ErrorLine{Error: msg})
}

// relay copies the upstream response through, flushing per write so
// row streams stay streams. A non-empty cacheKey tees the stream into
// the response cache — only a 200 that fits the per-entry cap, copied
// to completion (client still connected) and ending in a trailer line
// (no mid-stream error) is kept, and only when the serving member had
// applied the log at least up to cacheSeq before the request was
// dispatched. Without that gate, a read racing a write fan-out — log
// head already at N, this member still applying entry N — would
// capture pre-write data under the post-write key and serve it stale
// once the write acks.
func (rt *Router) relay(w http.ResponseWriter, a attempt, cacheKey string, cacheSeq uint64) {
	defer a.resp.Body.Close()
	defer a.cancel()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := a.resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Raven-Replica", a.m.name)
	w.WriteHeader(a.resp.StatusCode)
	fw := flushWriter{w: w}
	if f, ok := w.(http.Flusher); ok {
		fw.f = f
	}
	var tee *cappedTee
	var dst io.Writer = fw
	if rt.respCache != nil && cacheKey != "" && a.applied >= cacheSeq && a.resp.StatusCode == http.StatusOK {
		tee = &cappedTee{w: fw, cap: rt.respCache.EntryCap()}
		dst = tee
	}
	a.m.inflight.Add(1)
	_, err := io.Copy(dst, a.resp.Body)
	a.m.inflight.Add(-1)
	if tee != nil && err == nil && !tee.overflowed && streamComplete(tee.buf.Bytes()) {
		body := append([]byte(nil), tee.buf.Bytes()...)
		rt.respCache.Put(cacheKey, &cachedResponse{
			replica:     a.m.name,
			contentType: a.resp.Header.Get("Content-Type"),
			body:        body,
		}, int64(len(body)+len(cacheKey))+64)
	}
}

// hedgedFirst races the first attempt on two replicas when the primary
// is slower than the observed p99: fire on targets[0], wait hedgeDelay,
// fire on targets[1], take whichever returns a usable header first and
// cancel the other. Used only for the first attempt of reads — every
// later attempt is already a retry.
func (rt *Router) hedgedFirst(ctx context.Context, targets []*member, path0, path1 string, body []byte, hdr http.Header) attempt {
	delay := rt.lat.p99()
	results := make(chan attempt, 2)
	hctx, hcancel := context.WithCancel(ctx)
	launch := func(m *member, path string) {
		go func() {
			a := rt.tryMember(hctx, m, path, body, hdr)
			results <- a
		}()
	}
	launch(targets[0], path0)
	t := time.NewTimer(delay)
	var first attempt
	launched := 1
	select {
	case first = <-results:
		t.Stop()
	case <-t.C:
		rt.hedged.Add(1)
		launch(targets[1], path1)
		launched = 2
		first = <-results
	}
	usable := func(a attempt) bool {
		return a.err == nil && !retryableStatus(a.resp.StatusCode) && a.resp.StatusCode != http.StatusNotFound
	}
	if usable(first) {
		if launched == 2 && first.m == targets[1] {
			rt.hedgeWins.Add(1)
		}
		// Abandon the loser once it reports in; its context dies with
		// the winner's body copy, so no goroutine leaks past the copy.
		if launched == 2 {
			go func() {
				a := <-results
				a.discard()
			}()
		}
		first.cancel = hcancel
		return first
	}
	first.discard()
	if launched == 2 {
		second := <-results
		if usable(second) {
			if second.m == targets[1] {
				rt.hedgeWins.Add(1)
			}
			second.cancel = hcancel
			return second
		}
		second.discard()
	}
	hcancel()
	return attempt{m: first.m, err: firstErr(first)}
}

func firstErr(a attempt) error {
	if a.err != nil {
		return a.err
	}
	if a.resp != nil {
		return &server.HTTPError{Status: a.resp.StatusCode, Msg: a.resp.Status}
	}
	return errors.New("attempt failed")
}

// ---- handlers ----

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<22))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorLine{Error: err.Error()})
		return
	}
	var req server.QueryRequest
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, server.ErrorLine{Error: "bad request body: " + err.Error()})
			return
		}
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeJSON(w, http.StatusBadRequest, server.ErrorLine{Error: "missing sql"})
		return
	}
	tenant := requestTenant(r, req.Tenant)

	// Side-effect-only scripts replicate to every member; anything with
	// a SELECT routes to one. The same classifier the replicas use, so
	// router and replica never disagree. A script mixing DDL and a
	// SELECT would apply its side effects on only one replica — refuse
	// it at the router rather than silently diverge the cluster.
	if !server.ScriptMayHaveSelect(req.SQL) {
		if err := rt.replicate(r.Context(), logEntry{kind: entryScript, sql: req.SQL, tenant: tenant}); err != nil {
			writeJSON(w, replicateStatus(err), server.ErrorLine{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, server.ExecResponse{OK: true})
		return
	}
	if scriptHasSideEffects(req.SQL) {
		writeJSON(w, http.StatusBadRequest, server.ErrorLine{Error: "a clustered script cannot mix side effects with a SELECT: run the DDL/INSERT script first (it replicates to all replicas), then the query"})
		return
	}

	// Response cache: key under the log head as of now — before any
	// replica executes — so a side effect landing mid-flight strands the
	// captured entry instead of ever serving it stale. A hit returns
	// without touching targets, retry or hedging at all.
	var cacheKey string
	var cacheSeq uint64
	if rt.respCache != nil && !req.NoCache && cacheableRead(req.SQL) {
		cacheSeq = rt.logHead()
		cacheKey = respCacheKey(cacheSeq, "q", tenant, req.SQL, req.Params, req.Options)
		if rt.respCacheServe(w, cacheKey) {
			return
		}
	}

	pathFor := func(context.Context, *member) (string, error) { return "/query", nil }
	targets := rt.targetsFor(tenant)
	if rt.opts.Hedge && len(targets) >= 2 && rt.lat.size() >= rt.opts.HedgeMinSamples {
		a := rt.hedgedFirst(r.Context(), targets, "/query", "/query", body, r.Header)
		if a.err == nil {
			rt.routed.Add(1) // served here; the fall-through path is counted by proxyRead
			rt.relay(w, a, cacheKey, cacheSeq)
			return
		}
		// Both hedge legs failed; fall through to the plain retry loop.
	}
	rt.proxyRead(w, r, tenant, body, pathFor, nil, cacheKey, cacheSeq)
}

func (rt *Router) handleStoreModel(w http.ResponseWriter, r *http.Request) {
	var req server.ModelRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<26)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorLine{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Name == "" || len(req.Data) == 0 {
		writeJSON(w, http.StatusBadRequest, server.ErrorLine{Error: "missing model name or data"})
		return
	}
	tenant := requestTenant(r, req.Tenant)
	if err := rt.replicate(r.Context(), logEntry{kind: entryModel, name: req.Name, data: req.Data, tenant: tenant}); err != nil {
		writeJSON(w, replicateStatus(err), server.ErrorLine{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, server.ExecResponse{OK: true})
}

// replicateStatus maps a replication failure to a response status: a
// replica's own 4xx verdict on the entry (bad SQL everywhere → 400) is
// the client's error and passes through; anything else — transport
// failures, replica 5xx — is infrastructure, 502.
func replicateStatus(err error) int {
	var he *server.HTTPError
	if errors.As(err, &he) && he.Status >= 400 && he.Status < 500 {
		return he.Status
	}
	return http.StatusBadGateway
}

func (rt *Router) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req server.QueryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<22)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorLine{Error: "bad request body: " + err.Error()})
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeJSON(w, http.StatusBadRequest, server.ErrorLine{Error: "missing sql"})
		return
	}
	if h := r.Header.Get("X-Raven-Tenant"); h != "" {
		req.Tenant = h // bake the proxy-assigned tenant into the statement
	}

	// Register the statement, then prepare it eagerly on the tenant's
	// home replica: compile errors and the parameter list surface now,
	// synchronously, like they would against a single replica. Every
	// other replica prepares lazily on its first execution.
	rt.mu.Lock()
	rt.nextID++
	rs := &routerStmt{id: fmt.Sprintf("r%d", rt.nextID), req: req}
	rt.mu.Unlock()

	targets := rt.targetsFor(req.Tenant)
	if len(targets) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, server.ErrorLine{Error: "no healthy replicas"})
		return
	}
	_, err := rt.ensureStmt(r.Context(), targets[0], rs)
	if err != nil {
		status := http.StatusBadGateway
		var he *server.HTTPError
		if errors.As(err, &he) {
			status = he.Status
		}
		writeJSON(w, status, server.ErrorLine{Error: err.Error()})
		return
	}
	rt.mu.Lock()
	rt.stmts[rs.id] = rs
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, server.PrepareResponse{ID: rs.id, Params: rs.params})
}

// ensureStmt returns the replica-side id of rs on m, preparing it
// there on first use. The member's stmtMu makes concurrent first
// executions prepare once.
func (rt *Router) ensureStmt(ctx context.Context, m *member, rs *routerStmt) (string, error) {
	m.stmtMu.Lock()
	defer m.stmtMu.Unlock()
	if id, ok := m.stmts[rs.id]; ok {
		return id, nil
	}
	var pr *server.PrepareResponse
	err := rt.opts.Retry.Do(ctx, server.Transient, func() error {
		var perr error
		pr, perr = m.c.PrepareContext(ctx, rs.req)
		return perr
	})
	if err != nil {
		return "", fmt.Errorf("prepare on %s: %w", m.name, err)
	}
	m.stmts[rs.id] = pr.ID
	rs.paramsOnce.Do(func() { rs.params = pr.Params })
	return pr.ID, nil
}

func (rt *Router) handleStmtQuery(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	rs := rt.stmts[r.PathValue("id")]
	rt.mu.Unlock()
	if rs == nil {
		writeJSON(w, http.StatusNotFound, server.ErrorLine{Error: "unknown statement id"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<22))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorLine{Error: err.Error()})
		return
	}
	var req server.QueryRequest
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, server.ErrorLine{Error: "bad request body: " + err.Error()})
			return
		}
	}
	// Affinity: the execution's tenant if tagged, else the statement's.
	tenant := requestTenant(r, req.Tenant)
	if tenant == "" {
		tenant = rs.req.Tenant
	}

	// Prepared statements are compile-only (the prepare surface rejects
	// side effects), so every execution is a cacheable read; the router
	// statement id — never reused — stands in for SQL and options.
	var cacheKey string
	var cacheSeq uint64
	if rt.respCache != nil && !req.NoCache {
		cacheSeq = rt.logHead()
		cacheKey = respCacheKey(cacheSeq, "t", tenant, rs.id, req.Params, nil)
		if rt.respCacheServe(w, cacheKey) {
			return
		}
	}

	pathFor := func(ctx context.Context, m *member) (string, error) {
		id, err := rt.ensureStmt(ctx, m, rs)
		if err != nil {
			return "", err
		}
		return "/stmt/" + id + "/query", nil
	}
	// A 404 means the replica lost its registry (restart) or evicted
	// the statement: forget the cached id so the retry re-prepares —
	// transparent to the client.
	notFound := func(m *member) {
		m.stmtMu.Lock()
		delete(m.stmts, rs.id)
		m.stmtMu.Unlock()
		rt.reprepared.Add(1)
	}
	rt.proxyRead(w, r, tenant, body, pathFor, notFound, cacheKey, cacheSeq)
}

func (rt *Router) handleStmtDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt.mu.Lock()
	rs := rt.stmts[id]
	delete(rt.stmts, id)
	rt.mu.Unlock()
	if rs == nil {
		writeJSON(w, http.StatusNotFound, server.ErrorLine{Error: "unknown statement id"})
		return
	}
	// Best-effort close on every replica that prepared it; a replica
	// that is down restarted anyway, which already wiped its registry.
	for _, m := range rt.snapshotMembers() {
		m.stmtMu.Lock()
		rid, ok := m.stmts[rs.id]
		delete(m.stmts, rs.id)
		m.stmtMu.Unlock()
		if ok {
			m.c.CloseStmtContext(r.Context(), rid)
		}
	}
	writeJSON(w, http.StatusOK, server.ExecResponse{OK: true})
}

// ---- observability ----

// RouterStats is the router's own half of cluster stats.
type RouterStats struct {
	Members    int    `json:"members"`
	Healthy    int    `json:"healthy"`
	Routed     uint64 `json:"routed"`
	Spilled    uint64 `json:"spilled"`
	Retried    uint64 `json:"retried"`
	Hedged     uint64 `json:"hedged"`
	HedgeWins  uint64 `json:"hedge_wins"`
	Reprepared uint64 `json:"reprepared"`
	Repairs    uint64 `json:"repairs"`
	LogEntries uint64 `json:"log_entries"`
	// LogSkipped counts entries a diverged replica could not apply
	// (terminal 4xx during replay) and was advanced past instead of
	// being wedged in degraded forever. Non-zero means replica state
	// has drifted from the log.
	LogSkipped uint64  `json:"log_skipped"`
	Statements int     `json:"statements"`
	P99Millis  float64 `json:"p99_ms"`
	// Cache is the response cache's counters (absent when disabled).
	// Hits here never touched a replica.
	Cache *rescache.Stats `json:"cache,omitempty"`
}

// MemberInfo is one replica's row in cluster stats.
type MemberInfo struct {
	Name        string                `json:"name"`
	Base        string                `json:"base"`
	State       string                `json:"state"`
	Health      server.Health         `json:"health"`
	AppliedSeq  uint64                `json:"applied_seq"`
	LastVersion uint64                `json:"last_version"`
	Inflight    int64                 `json:"inflight"`
	Stats       *server.StatsResponse `json:"stats,omitempty"`
	StatsError  string                `json:"stats_error,omitempty"`
}

// ClusterStats is the body of the router's GET /stats: the cluster
// aggregated, not one replica's view.
type ClusterStats struct {
	Router  RouterStats  `json:"router"`
	Members []MemberInfo `json:"members"`
}

// Stats aggregates the cluster: router counters plus, per member, its
// reconciler view and (for reachable members) a live /stats fetch.
func (rt *Router) Stats(ctx context.Context) ClusterStats {
	members := rt.snapshotMembers()
	infos := make([]MemberInfo, len(members))
	var wg sync.WaitGroup
	healthy := 0
	for i, m := range members {
		if m.routable() {
			healthy++
		}
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			m.applyMu.Lock()
			applied, version := m.appliedSeq.Load(), m.lastVersion
			m.applyMu.Unlock()
			info := MemberInfo{
				Name:        m.name,
				Base:        m.base,
				State:       m.getState().String(),
				Health:      m.lastHealth(),
				AppliedSeq:  applied,
				LastVersion: version,
				Inflight:    m.inflight.Load(),
			}
			if m.getState() != StateDown {
				if st, err := m.c.StatsContext(ctx); err == nil {
					info.Stats = st
				} else {
					info.StatsError = err.Error()
				}
			}
			infos[i] = info
		}(i, m)
	}
	wg.Wait()
	rt.mu.Lock()
	stmts := len(rt.stmts)
	entries := rt.logSeq
	rt.mu.Unlock()
	var cacheStats *rescache.Stats
	if rt.respCache != nil {
		s := rt.respCache.Stats()
		cacheStats = &s
	}
	return ClusterStats{
		Router: RouterStats{
			Members:    len(members),
			Healthy:    healthy,
			Routed:     rt.routed.Load(),
			Spilled:    rt.spilled.Load(),
			Retried:    rt.retried.Load(),
			Hedged:     rt.hedged.Load(),
			HedgeWins:  rt.hedgeWins.Load(),
			Reprepared: rt.reprepared.Load(),
			Repairs:    rt.repairs.Load(),
			LogEntries: entries,
			LogSkipped: rt.skipped.Load(),
			Statements: stmts,
			P99Millis:  float64(rt.lat.p99()) / float64(time.Millisecond),
			Cache:      cacheStats,
		},
		Members: infos,
	}
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.ProbeTimeout)
	defer cancel()
	writeJSON(w, http.StatusOK, rt.Stats(ctx))
}

// handleHealthz reports the router's own health: ok while at least one
// member is routable. The aggregate queue/active gauges let a
// load balancer in front of several routers spill between them the
// same way routers spill between replicas.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := server.Health{Status: "ok"}
	healthy := 0
	for _, m := range rt.snapshotMembers() {
		if !m.routable() {
			continue
		}
		healthy++
		lh := m.lastHealth()
		h.Queue += lh.Queue
		h.Active += lh.Active
		if lh.CatalogVersion > h.CatalogVersion {
			h.CatalogVersion = lh.CatalogVersion
		}
	}
	status := http.StatusOK
	if healthy == 0 {
		h.Status = "unavailable"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// scriptHasSideEffects scans for leading side-effect keywords on any
// `;`-separated statement — the guard against scripts that both mutate
// and SELECT, which cannot be both replicated and routed.
func scriptHasSideEffects(script string) bool {
	for _, stmt := range strings.Split(script, ";") {
		s := strings.ToUpper(strings.TrimSpace(stmt))
		for _, kw := range []string{"CREATE ", "INSERT ", "DROP ", "DELETE ", "UPDATE ", "ALTER ", "TRAIN "} {
			if strings.HasPrefix(s, kw) {
				return true
			}
		}
	}
	return false
}

// ---- latency window (hedge-delay estimation) ----

// latWindow is a fixed ring of recent first-byte latencies for routed
// reads; p99 over it sets the hedge delay.
type latWindow struct {
	mu   sync.Mutex
	buf  [128]time.Duration
	n    int // filled
	next int
}

func (l *latWindow) record(d time.Duration) {
	l.mu.Lock()
	l.buf[l.next] = d
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

func (l *latWindow) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// p99 returns the 99th-percentile recorded latency (floor 1ms so an
// all-fast window does not hedge every single request).
func (l *latWindow) p99() time.Duration {
	l.mu.Lock()
	vals := make([]time.Duration, l.n)
	copy(vals, l.buf[:l.n])
	l.mu.Unlock()
	if len(vals) == 0 {
		return time.Second
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	idx := len(vals) * 99 / 100
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	d := vals[idx]
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
