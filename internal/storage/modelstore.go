package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"
)

// StoredModel is one immutable version of a named model pipeline as kept in
// the database. Bytes is the serialized pipeline (the engine above decides
// the encoding: a Python script, gob, or JSON); Format names it.
type StoredModel struct {
	Name      string
	Version   int
	Format    string // e.g. "python-pipeline", "gob-pipeline", "nn-graph"
	Bytes     []byte
	Hash      string // content hash, used as a session-cache key
	CreatedAt time.Time
	Meta      map[string]string
}

// AuditEntry records one model-store mutation, mirroring the auditability
// guarantee the paper inherits from the RDBMS (paper §2).
type AuditEntry struct {
	Time    time.Time
	Op      string // "put", "delete", "rollback"
	Name    string
	Version int
	TxID    uint64
}

// ModelStore is a versioned, transactional store for model pipelines.
// Writes happen inside transactions: either every model put in the
// transaction becomes visible, or none does (single-node atomicity via a
// commit lock, which is what the paper's transactionality claim needs).
type ModelStore struct {
	mu       sync.RWMutex
	versions map[string][]*StoredModel // name -> versions, ascending
	audit    []AuditEntry
	nextTx   uint64
	// backend, when non-nil, WAL-logs commits before they apply.
	backend Backend
}

// NewModelStore returns an empty store.
func NewModelStore() *ModelStore {
	return &ModelStore{versions: make(map[string][]*StoredModel)}
}

// Tx is an open model-store transaction. It buffers writes until Commit.
type Tx struct {
	store   *ModelStore
	id      uint64
	puts    []*StoredModel
	deletes []string
	done    bool
}

// Begin opens a transaction.
func (s *ModelStore) Begin() *Tx {
	s.mu.Lock()
	s.nextTx++
	id := s.nextTx
	s.mu.Unlock()
	return &Tx{store: s, id: id}
}

// Put stages a new version of the named model in the transaction.
func (t *Tx) Put(name, format string, data []byte, meta map[string]string) {
	h := sha256.Sum256(data)
	t.puts = append(t.puts, &StoredModel{
		Name:   name,
		Format: format,
		Bytes:  data,
		Hash:   hex.EncodeToString(h[:]),
		Meta:   meta,
	})
}

// Delete stages removal of all versions of the named model.
func (t *Tx) Delete(name string) { t.deletes = append(t.deletes, name) }

func (s *ModelStore) setBackend(b Backend) {
	s.mu.Lock()
	s.backend = b
	s.mu.Unlock()
}

// Commit atomically applies all staged writes.
func (t *Tx) Commit() error {
	if t.done {
		return fmt.Errorf("storage: transaction %d already finished", t.id)
	}
	t.done = true
	s := t.store
	s.mu.RLock()
	b := s.backend
	s.mu.RUnlock()
	if b != nil {
		return b.CommitModelTx(t)
	}
	return t.commitLocal()
}

// commitLocal applies the transaction to in-memory state. The durable
// backend calls it after the tx is safely in the WAL.
func (t *Tx) commitLocal() error {
	s := t.store
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	for _, name := range t.deletes {
		k := key(name)
		if _, ok := s.versions[k]; !ok {
			return fmt.Errorf("storage: delete of unknown model %q aborts tx %d", name, t.id)
		}
	}
	for _, name := range t.deletes {
		k := key(name)
		delete(s.versions, k)
		s.audit = append(s.audit, AuditEntry{Time: now, Op: "delete", Name: name, TxID: t.id})
	}
	for _, m := range t.puts {
		k := key(m.Name)
		m.Version = len(s.versions[k]) + 1
		m.CreatedAt = now
		s.versions[k] = append(s.versions[k], m)
		s.audit = append(s.audit, AuditEntry{Time: now, Op: "put", Name: m.Name, Version: m.Version, TxID: t.id})
	}
	return nil
}

// Rollback discards staged writes.
func (t *Tx) Rollback() {
	if t.done {
		return
	}
	t.done = true
	s := t.store
	s.mu.Lock()
	s.audit = append(s.audit, AuditEntry{Time: time.Now(), Op: "rollback", TxID: t.id})
	s.mu.Unlock()
}

// PutModel is the non-transactional convenience path: one put, one commit.
func (s *ModelStore) PutModel(name, format string, data []byte, meta map[string]string) error {
	tx := s.Begin()
	tx.Put(name, format, data, meta)
	return tx.Commit()
}

// Latest returns the newest version of the named model.
func (s *ModelStore) Latest(name string) (*StoredModel, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.versions[key(name)]
	if len(vs) == 0 {
		return nil, fmt.Errorf("storage: model %q not found", name)
	}
	return vs[len(vs)-1], nil
}

// Version returns a specific version of the named model.
func (s *ModelStore) Version(name string, version int) (*StoredModel, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.versions[key(name)]
	if version < 1 || version > len(vs) {
		return nil, fmt.Errorf("storage: model %q has no version %d", name, version)
	}
	return vs[version-1], nil
}

// Names lists stored model names, sorted.
func (s *ModelStore) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.versions))
	for _, vs := range s.versions {
		out = append(out, vs[0].Name)
	}
	sort.Strings(out)
	return out
}

// hasModel reports whether any version of the named model exists.
func (s *ModelStore) hasModel(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.versions[key(name)]) > 0
}

// restore re-registers a model version exactly as recorded (manifest
// load during recovery). Versions must arrive in ascending order.
func (s *ModelStore) restore(m *StoredModel) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key(m.Name)
	if want := len(s.versions[k]) + 1; m.Version != want {
		return fmt.Errorf("storage: restore model %q version %d out of order (want %d)", m.Name, m.Version, want)
	}
	s.versions[k] = append(s.versions[k], m)
	return nil
}

// snapshotModels returns every stored model version, ascending per name,
// for the checkpoint manifest.
func (s *ModelStore) snapshotModels() []*StoredModel {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.versions))
	for k := range s.versions {
		names = append(names, k)
	}
	sort.Strings(names)
	var out []*StoredModel
	for _, k := range names {
		out = append(out, s.versions[k]...)
	}
	return out
}

// Audit returns a copy of the audit log.
func (s *ModelStore) Audit() []AuditEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]AuditEntry, len(s.audit))
	copy(out, s.audit)
	return out
}
