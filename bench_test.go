// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark wraps the corresponding experiment in
// internal/bench at quick scale; `go run ./cmd/ravenbench` prints the
// full-scale tables recorded in EXPERIMENTS.md.
package raven_test

import (
	"testing"

	"raven"
	"raven/internal/bench"
	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/train"
)

func runExperiment(b *testing.B, fn func(bench.Config) (*bench.Table, error)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := fn(bench.QuickConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkFig2aProjectionPushdown regenerates Fig 2(a): model-projection
// pushdown on L1-sparse logistic regression over flight delay.
func BenchmarkFig2aProjectionPushdown(b *testing.B) { runExperiment(b, bench.Fig2a) }

// BenchmarkFig2bModelClustering regenerates Fig 2(b): per-cluster
// precompiled models vs the original pipeline.
func BenchmarkFig2bModelClustering(b *testing.B) { runExperiment(b, bench.Fig2b) }

// BenchmarkFig2cModelInlining regenerates Fig 2(c): decision tree inlined
// as a SQL CASE expression vs external classical-framework scoring.
func BenchmarkFig2cModelInlining(b *testing.B) { runExperiment(b, bench.Fig2c) }

// BenchmarkFig2dNNTranslation regenerates Fig 2(d): random forest vs its
// NN translation on CPU and the simulated GPU.
func BenchmarkFig2dNNTranslation(b *testing.B) { runExperiment(b, bench.Fig2d) }

// BenchmarkFig3InferenceModes regenerates Fig 3: standalone ORT vs Raven
// in-process (cache + parallel scan) vs Raven Ext (out-of-process).
func BenchmarkFig3InferenceModes(b *testing.B) { runExperiment(b, bench.Fig3) }

// BenchmarkPredicatePruning regenerates the §4.1 inline numbers: ~29%
// faster tree under pregnant=1, ~2.1x LR with a categorical equality.
func BenchmarkPredicatePruning(b *testing.B) { runExperiment(b, bench.PredicatePruning) }

// BenchmarkBatchVsTuple regenerates §5 observation (v): batch inference
// vs one prediction per tuple.
func BenchmarkBatchVsTuple(b *testing.B) { runExperiment(b, bench.BatchVsTuple) }

// BenchmarkStaticAnalysis regenerates §3.2's <10ms static-analysis claim.
func BenchmarkStaticAnalysis(b *testing.B) { runExperiment(b, bench.StaticAnalysis) }

// BenchmarkRunningExample regenerates the Fig 1 end-to-end query with all
// optimizations against the unoptimized external path.
func BenchmarkRunningExample(b *testing.B) { runExperiment(b, bench.RunningExample) }

// BenchmarkParallelScaling measures the morsel-parallel scan+PREDICT
// pipeline against the serial plan.
func BenchmarkParallelScaling(b *testing.B) { runExperiment(b, bench.ParallelScaling) }

// BenchmarkPreparedPredict measures prepared/plan-cached execution against
// cold per-call compilation on a small inference query.
func BenchmarkPreparedPredict(b *testing.B) { runExperiment(b, bench.PreparedPredict) }

// BenchmarkQueryOptimizedVsBaseline measures one optimized inference query
// end to end (per-iteration latency rather than whole-experiment time).
func BenchmarkQueryOptimizedVsBaseline(b *testing.B) {
	db := raven.MustOpen()
	h, err := data.GenHospital(db.Catalog(), 50000, 4000, 42)
	if err != nil {
		b.Fatal(err)
	}
	tree := train.FitTree(h.TrainX, h.TrainY, train.TreeOptions{MaxDepth: 6, MinLeaf: 10})
	if err := db.StoreModel("m", &ml.Pipeline{Final: tree, InputColumns: h.FeatureCols}); err != nil {
		b.Fatal(err)
	}
	q := `SELECT p.s FROM PREDICT(MODEL='m',
		DATA=(SELECT * FROM patient_info AS pi
		      JOIN blood_tests AS bt ON pi.id = bt.id
		      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
		WITH (s FLOAT) AS p WHERE d.pregnant = 1`
	b.Run("optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baseline-inprocess", func(b *testing.B) {
		opts := raven.QueryOptions{CrossOptimize: false, Mode: raven.ModeInProcess, Parallelism: 1}
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryWithOptions(q, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baseline-external", func(b *testing.B) {
		// the paper's headline comparison: the framework outside the DB
		opts := raven.QueryOptions{CrossOptimize: false, Mode: raven.ModeOutOfProcess, Parallelism: 1}
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryWithOptions(q, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
