package ml

import (
	"fmt"
	"math"
	"sort"
)

// DecisionTree is a fitted binary decision tree in array form (the layout
// scikit-learn uses). Internal node i tests Feature[i] <= Threshold[i]:
// true goes to Left[i], false to Right[i]. Leaves have Feature[i] == -1 and
// predict Value[i] (class-1 probability for classifiers, mean for
// regressors). Node 0 is the root.
type DecisionTree struct {
	Feature   []int
	Threshold []float64
	Left      []int
	Right     []int
	Value     []float64
	NFeat     int
}

// Leaf reports whether node i is a leaf.
func (t *DecisionTree) Leaf(i int) bool { return t.Feature[i] < 0 }

// NumNodes returns the node count.
func (t *DecisionTree) NumNodes() int { return len(t.Feature) }

// Depth returns the maximum root-to-leaf depth.
func (t *DecisionTree) Depth() int {
	var walk func(i int) int
	walk = func(i int) int {
		if t.Leaf(i) {
			return 0
		}
		l, r := walk(t.Left[i]), walk(t.Right[i])
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if t.NumNodes() == 0 {
		return 0
	}
	return walk(0)
}

// NumFeatures implements Model.
func (t *DecisionTree) NumFeatures() int { return t.NFeat }

// Kind implements Model.
func (t *DecisionTree) Kind() string { return "tree" }

// Predict implements Model: per-row root-to-leaf traversal, the way an
// interpreted classical framework scores a tree.
func (t *DecisionTree) Predict(in Matrix) ([]float64, error) {
	if in.Cols != t.NFeat {
		return nil, fmt.Errorf("ml: tree expects %d features, got %d", t.NFeat, in.Cols)
	}
	out := make([]float64, in.Rows)
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		n := 0
		for !t.Leaf(n) {
			if row[t.Feature[n]] <= t.Threshold[n] {
				n = t.Left[n]
			} else {
				n = t.Right[n]
			}
		}
		out[i] = t.Value[n]
	}
	return out, nil
}

// PredictInto implements ModelInto: same traversal as Predict, writing into
// out instead of allocating.
func (t *DecisionTree) PredictInto(in Matrix, out []float64, _ *PredictScratch) error {
	if in.Cols != t.NFeat {
		return fmt.Errorf("ml: tree expects %d features, got %d", t.NFeat, in.Cols)
	}
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		n := 0
		for !t.Leaf(n) {
			if row[t.Feature[n]] <= t.Threshold[n] {
				n = t.Left[n]
			} else {
				n = t.Right[n]
			}
		}
		out[i] = t.Value[n]
	}
	return nil
}

// UsedFeatures implements Model.
func (t *DecisionTree) UsedFeatures() []int {
	seen := make(map[int]bool)
	for _, f := range t.Feature {
		if f >= 0 {
			seen[f] = true
		}
	}
	out := make([]int, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// Interval is a closed range of feature values known to hold at scoring
// time (derived from query predicates or data statistics).
type Interval struct {
	Lo, Hi float64
}

// Point builds the degenerate interval [v, v] for equality predicates.
func Point(v float64) Interval { return Interval{Lo: v, Hi: v} }

// FullInterval covers all reals.
func FullInterval() Interval { return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)} }

// Constraints maps feature ordinal to its known interval.
type Constraints map[int]Interval

// Prune returns a new tree with branches unreachable under the constraints
// removed — the paper's predicate-based model pruning (§4.1): a filter
// pregnant=1 makes the pregnant<=0 branch dead, so it is cut and the tree
// gets cheaper to evaluate (29% in the paper's example).
func (t *DecisionTree) Prune(c Constraints) *DecisionTree {
	nt := &DecisionTree{NFeat: t.NFeat}
	root := buildWith(t, nt, 0, c)
	if root != 0 {
		// buildWith appends nodes post-order, so the root may not be node
		// 0; renumber so callers can assume root 0.
		nt = nt.rerooted(root)
	}
	return nt
}

func tighten(c Constraints, f int, thr float64, left bool) Constraints {
	out := make(Constraints, len(c)+1)
	for k, v := range c {
		out[k] = v
	}
	iv, ok := out[f]
	if !ok {
		iv = FullInterval()
	}
	if left && thr < iv.Hi {
		iv.Hi = thr
	}
	if !left && thr >= iv.Lo {
		// going right means x > thr; approximate open bound with nextafter
		iv.Lo = math.Nextafter(thr, math.Inf(1))
	}
	out[f] = iv
	return out
}

func buildWith(src, dst *DecisionTree, i int, c Constraints) int {
	if src.Leaf(i) {
		return dst.addLeaf(src.Value[i])
	}
	f, thr := src.Feature[i], src.Threshold[i]
	if iv, ok := c[f]; ok {
		if iv.Hi <= thr {
			return buildWith(src, dst, src.Left[i], c)
		}
		if iv.Lo > thr {
			return buildWith(src, dst, src.Right[i], c)
		}
	}
	l := buildWith(src, dst, src.Left[i], tighten(c, f, thr, true))
	r := buildWith(src, dst, src.Right[i], tighten(c, f, thr, false))
	return dst.addSplit(f, thr, l, r)
}

func (t *DecisionTree) addLeaf(v float64) int {
	t.Feature = append(t.Feature, -1)
	t.Threshold = append(t.Threshold, 0)
	t.Left = append(t.Left, -1)
	t.Right = append(t.Right, -1)
	t.Value = append(t.Value, v)
	return len(t.Feature) - 1
}

func (t *DecisionTree) addSplit(f int, thr float64, l, r int) int {
	t.Feature = append(t.Feature, f)
	t.Threshold = append(t.Threshold, thr)
	t.Left = append(t.Left, l)
	t.Right = append(t.Right, r)
	t.Value = append(t.Value, 0)
	return len(t.Feature) - 1
}

// rerooted returns a copy whose root is node 0 (nodes renumbered by
// preorder from the given root).
func (t *DecisionTree) rerooted(root int) *DecisionTree {
	nt := &DecisionTree{NFeat: t.NFeat}
	var copyNode func(i int) int
	copyNode = func(i int) int {
		if t.Leaf(i) {
			return nt.addLeaf(t.Value[i])
		}
		self := nt.addSplit(t.Feature[i], t.Threshold[i], -1, -1)
		l := copyNode(t.Left[i])
		r := copyNode(t.Right[i])
		nt.Left[self], nt.Right[self] = l, r
		return self
	}
	copyNode(root)
	return nt
}

// RemapFeatures renumbers feature ordinals via the given old→new map. Used
// after model-projection pushdown narrows the input matrix. Features absent
// from the map must be unused by the tree.
func (t *DecisionTree) RemapFeatures(remap map[int]int, newDim int) (*DecisionTree, error) {
	nt := &DecisionTree{
		Feature:   make([]int, len(t.Feature)),
		Threshold: append([]float64(nil), t.Threshold...),
		Left:      append([]int(nil), t.Left...),
		Right:     append([]int(nil), t.Right...),
		Value:     append([]float64(nil), t.Value...),
		NFeat:     newDim,
	}
	for i, f := range t.Feature {
		if f < 0 {
			nt.Feature[i] = -1
			continue
		}
		nf, ok := remap[f]
		if !ok {
			return nil, fmt.Errorf("ml: tree uses feature %d which the remap drops", f)
		}
		nt.Feature[i] = nf
	}
	return nt, nil
}

// SplitOnRoot partitions the tree on its root test into the two subtrees,
// returning (condition feature, threshold, left model, right model). This
// is the paper's model/query splitting (§2): the pruned model becomes a
// cheap model for one branch and a complex one for the other, each side
// separately optimizable.
func (t *DecisionTree) SplitOnRoot() (feature int, threshold float64, left, right *DecisionTree, err error) {
	if t.NumNodes() == 0 || t.Leaf(0) {
		return 0, 0, nil, nil, fmt.Errorf("ml: tree has no root split")
	}
	l := t.rerooted(t.Left[0])
	r := t.rerooted(t.Right[0])
	return t.Feature[0], t.Threshold[0], l, r, nil
}

// RandomForest averages an ensemble of trees (bagging). Predict returns the
// mean of tree outputs, i.e. the class-1 probability for classification
// forests built from class-probability leaves.
type RandomForest struct {
	Trees []*DecisionTree
}

// NumFeatures implements Model.
func (f *RandomForest) NumFeatures() int {
	if len(f.Trees) == 0 {
		return 0
	}
	return f.Trees[0].NFeat
}

// Kind implements Model.
func (f *RandomForest) Kind() string { return "forest" }

// Predict implements Model.
func (f *RandomForest) Predict(in Matrix) ([]float64, error) {
	if len(f.Trees) == 0 {
		return nil, fmt.Errorf("ml: empty forest")
	}
	out := make([]float64, in.Rows)
	for _, t := range f.Trees {
		p, err := t.Predict(in)
		if err != nil {
			return nil, err
		}
		for i, v := range p {
			out[i] += v
		}
	}
	inv := 1 / float64(len(f.Trees))
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// PredictInto implements ModelInto. Trees accumulate in the same order and
// the mean is taken by the same single multiply as Predict, so scores are
// bit-identical.
func (f *RandomForest) PredictInto(in Matrix, out []float64, sc *PredictScratch) error {
	if len(f.Trees) == 0 {
		return fmt.Errorf("ml: empty forest")
	}
	for i := range out {
		out[i] = 0
	}
	tmp := sc.treeBuffer(in.Rows)
	for _, t := range f.Trees {
		if err := t.PredictInto(in, tmp, sc); err != nil {
			return err
		}
		for i, v := range tmp {
			out[i] += v
		}
	}
	inv := 1 / float64(len(f.Trees))
	for i := range out {
		out[i] *= inv
	}
	return nil
}

// UsedFeatures implements Model.
func (f *RandomForest) UsedFeatures() []int {
	seen := make(map[int]bool)
	for _, t := range f.Trees {
		for _, u := range t.UsedFeatures() {
			seen[u] = true
		}
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Prune applies predicate-based pruning to every tree in the forest.
func (f *RandomForest) Prune(c Constraints) *RandomForest {
	out := &RandomForest{Trees: make([]*DecisionTree, len(f.Trees))}
	for i, t := range f.Trees {
		out.Trees[i] = t.Prune(c)
	}
	return out
}
