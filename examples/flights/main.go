// Flights: model-projection pushdown on L1-sparse logistic regression
// (paper §4.1 / Fig 2a). Trains two flight-delay models at different L1
// strengths, stores both, and shows how the zero-weight features are
// projected out of the scan — larger sparsity, larger win.
package main

import (
	"fmt"
	"log"

	"raven"
	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/train"
)

func main() {
	db := raven.MustOpen()
	fmt.Println("generating flights_features (wide pre-encoded feature table)...")
	fl, err := data.GenFlightsWide(db.Catalog(), 300000, 150, 40, 5000, 21)
	if err != nil {
		log.Fatal(err)
	}

	for _, m := range []struct {
		name string
		l1   float64
	}{
		{"delay_weak_l1", 0.004},
		{"delay_strong_l1", 0.05},
	} {
		lr := train.FitLogReg(fl.TrainX, fl.TrainY, train.LogRegOptions{L1: m.l1, Epochs: 60, Seed: 2})
		scores, _ := lr.Predict(fl.TrainX)
		auc := train.AUC(scores, fl.TrainY)
		if err := db.StoreModel(m.name, &ml.Pipeline{Final: lr, InputColumns: fl.FeatureCols}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nmodel %s: sparsity %.1f%%, AUC %.3f\n", m.name, lr.Sparsity()*100, auc)

		q := fmt.Sprintf(`SELECT p.prob FROM PREDICT(MODEL='%s',
			DATA=flights_features AS d) WITH (prob FLOAT) AS p`, m.name)

		base, err := db.QueryWithOptions(q, raven.QueryOptions{
			CrossOptimize: false, Mode: raven.ModeInProcess, Parallelism: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		opt, err := db.QueryWithOptions(q, raven.QueryOptions{
			CrossOptimize: true, DisableNNTranslation: true, DisableInlining: true,
			Mode: raven.ModeInProcess, Parallelism: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  baseline:            %v\n", base.Elapsed.Round(1000000))
		fmt.Printf("  projection pushdown: %v (%.2fx, rules %v)\n",
			opt.Elapsed.Round(1000000), float64(base.Elapsed)/float64(opt.Elapsed), opt.AppliedRules)
	}

	// The narrowed scan is visible in the regenerated plan.
	explain, err := db.Explain(`SELECT p.prob FROM PREDICT(MODEL='delay_strong_l1',
		DATA=flights_features AS d) WITH (prob FLOAT) AS p`,
		raven.QueryOptions{CrossOptimize: true, DisableNNTranslation: true, DisableInlining: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== optimizer view (note the pruned scan column list) ==")
	fmt.Println(truncate(explain, 2200))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "\n... (truncated)"
}
