// Package codegen is Raven's Runtime Code Generator (paper §2, §5): it
// lowers the optimized unified IR into an executable physical operator
// tree, binding each ML stage to an execution mode (in-process pipeline,
// in-process tensor session, out-of-process, container), and can render
// the regenerated SQL for inspection.
package codegen

import (
	"context"
	"fmt"
	"strings"

	"raven/internal/exec"
	"raven/internal/expr"
	"raven/internal/ir"
	"raven/internal/ml"
	"raven/internal/ort"
	"raven/internal/plan"
	"raven/internal/rt"
	"raven/internal/types"
)

// Config controls lowering.
type Config struct {
	Runtime *rt.Runtime
	// Ctx cancels execution of the compiled operator tree: exchanges,
	// serial scans, pipeline breakers and predictors all observe it. Nil
	// means not cancellable.
	Ctx context.Context
	// Mode selects how MLD chains execute. LA nodes always run on the
	// tensor runtime.
	Mode rt.Mode
	// Parallelism is the morsel-exchange worker count (1 = sequential).
	Parallelism int
	// ParallelThresholdRows gates parallel scans.
	ParallelThresholdRows int
	// MorselSize is the rows-per-morsel of parallel scans (0 = default).
	MorselSize int
	// Tuner, when set, adapts morsel, serial-scan and inference batch
	// sizes (engine option WithAdaptiveMorsels). Explicit sizes win.
	Tuner *exec.Tuner
	// CacheKey identifies the model for session caching; empty disables
	// caching (the standalone-runtime behaviour).
	CacheKey string
}

func (c *Config) runtime() *rt.Runtime {
	if c.Runtime == nil {
		c.Runtime = rt.NewRuntime()
	}
	return c.Runtime
}

// Compile lowers the IR graph into a physical operator.
func Compile(g *ir.Graph, cfg *Config) (exec.Operator, error) {
	parts, err := compileNode(g.Root, cfg)
	if err != nil {
		return nil, err
	}
	if len(parts) == 1 {
		// A breaker at the root may still carry its stage-free
		// re-parallelization exchange; nothing can push onto it now.
		return exec.UnwrapIdleExchange(parts[0]), nil
	}
	return &exec.Parallel{Parts: parts}, nil
}

func env(cfg *Config, inputParts []exec.Operator) *exec.Env {
	return &exec.Env{
		Ctx:                   cfg.Ctx,
		Parallelism:           cfg.Parallelism,
		ParallelThresholdRows: cfg.ParallelThresholdRows,
		MorselSize:            cfg.MorselSize,
		InputParts:            inputParts,
		Tuner:                 cfg.Tuner,
	}
}

// compileNode lowers one IR node (and its inputs) to operator partitions.
func compileNode(n ir.Node, cfg *Config) ([]exec.Operator, error) {
	switch x := n.(type) {
	case *ir.RelNode:
		var inputParts []exec.Operator
		if x.In != nil {
			var err error
			inputParts, err = compileNode(x.In, cfg)
			if err != nil {
				return nil, err
			}
		}
		return exec.CompileParts(x.Plan, env(cfg, inputParts))

	case *ir.TransformNode:
		// Transforms compile together with their consuming model; reaching
		// one directly means a malformed chain.
		return nil, fmt.Errorf("codegen: dangling transform node (no model above it)")

	case *ir.ModelNode:
		steps, below := collectTransforms(x.In)
		var inputParts []exec.Operator
		var err error
		if below != nil {
			inputParts, err = compileNode(below, cfg)
			if err != nil {
				return nil, err
			}
		}
		if len(inputParts) == 0 {
			return nil, fmt.Errorf("codegen: model node has no relational input")
		}
		pipe := &ml.Pipeline{Steps: steps, Final: x.M, InputColumns: x.InputCols}
		pred, err := buildPredictor(cfg, pipe, x.OutputCol.Type)
		if err != nil {
			return nil, err
		}
		return predictParts(cfg, inputParts, pred, x.OutputCol)

	case *ir.LANode:
		steps, below := collectTransforms(x.In)
		if len(steps) > 0 {
			return nil, fmt.Errorf("codegen: transforms below an LA node should have been fused")
		}
		var inputParts []exec.Operator
		var err error
		if below != nil {
			inputParts, err = compileNode(below, cfg)
			if err != nil {
				return nil, err
			}
		}
		if len(inputParts) == 0 {
			return nil, fmt.Errorf("codegen: LA node has no relational input")
		}
		r := cfg.runtime()
		var sess *ort.Session
		if x.UseGPU {
			gpuRT := &rt.Runtime{Cache: r.Cache, Provider: ort.DefaultGPU(), GraphOptimize: r.GraphOptimize}
			key := cfg.CacheKey
			if key != "" {
				key += "/gpu"
			}
			sess, err = gpuRT.BuildSession(key, x.G)
		} else {
			sess, err = r.BuildSession(cfg.CacheKey, x.G)
		}
		if err != nil {
			return nil, err
		}
		pred := &rt.SessionPredictor{Session: sess, InputCols: x.InputCols, OutType: x.OutputCol.Type}
		return predictParts(cfg, inputParts, pred, x.OutputCol)

	case *ir.UDFNode:
		// UDFs wrap serially (sealing any exchange below): the opaque batch
		// function carries no concurrency-safety contract.
		inputParts, err := compileNode(x.In, cfg)
		if err != nil {
			return nil, err
		}
		out := make([]exec.Operator, len(inputParts))
		for i, p := range inputParts {
			out[i] = &udfOp{child: p, fn: x.Fn, schema: x.Out}
		}
		return out, nil

	case *ir.SplitNode:
		return compileSplit(x, cfg)

	default:
		return nil, fmt.Errorf("codegen: cannot compile IR node %T", n)
	}
}

// predictParts lowers an ML scoring stage over its input partitions. When
// the input is a still-growing morsel exchange the score becomes one more
// stage in the same pipeline, so scan, filter and inference all run on the
// exchange's workers. Pipeline breakers (join, aggregate, sort) no longer
// seal the plan: exec splits the pipeline around them and re-opens a fresh
// exchange above each breaker, so a PREDICT over a join or GROUP BY result
// still pushes here and scores morsel-parallel. Only genuinely serial
// inputs (DOP 1, unioned split branches) fall back to a PredictOp, which
// recovers slice-parallel inference on oversized batches.
func predictParts(cfg *Config, inputParts []exec.Operator, pred exec.Predictor, outCol types.Column) ([]exec.Operator, error) {
	if cfg.Ctx != nil {
		pred = &rt.ContextPredictor{Ctx: cfg.Ctx, Inner: pred}
	}
	if ex, ok := exec.PushableExchange(inputParts); ok {
		if err := ex.Push(&exec.PredictStage{Predictor: pred, OutputCols: []types.Column{outCol}}); err != nil {
			return nil, err
		}
		return inputParts, nil
	}
	out := make([]exec.Operator, len(inputParts))
	for i, p := range inputParts {
		op := exec.NewPredictOp(p, pred, []types.Column{outCol})
		op.Parallelism = cfg.Parallelism
		op.MorselSize = cfg.MorselSize
		out[i] = op
	}
	return out, nil
}

// collectTransforms walks down consecutive TransformNodes, returning the
// steps in execution order and the node below them.
func collectTransforms(n ir.Node) ([]ml.Transformer, ir.Node) {
	var rev []ml.Transformer
	for {
		t, ok := n.(*ir.TransformNode)
		if !ok {
			break
		}
		rev = append(rev, t.T)
		n = t.In
	}
	// rev is model-adjacent first; reverse into execution order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, n
}

// buildPredictor maps the configured mode to a predictor implementation.
func buildPredictor(cfg *Config, pipe *ml.Pipeline, outType types.DataType) (exec.Predictor, error) {
	r := cfg.runtime()
	switch cfg.Mode {
	case rt.ModeInProcess:
		return pipelinePredictor(cfg, pipe, outType), nil
	case rt.ModeInProcessNN:
		return r.NNPredictor(cfg.CacheKey, pipe, outType)
	case rt.ModeOutOfProcess:
		inner := pipelinePredictor(cfg, pipe, outType)
		return &rt.OutOfProcessPredictor{Inner: inner, Startup: r.ExternalStartup, Ctx: cfg.Ctx}, nil
	case rt.ModeContainer:
		pred, _, err := rt.NewContainerPredictor(pipe, outType)
		return pred, err
	default:
		return nil, fmt.Errorf("codegen: unknown mode %v", cfg.Mode)
	}
}

// pipelinePredictor builds the in-process interpreted predictor, with the
// inference chunk size tuned to the pipeline's feature width when the
// engine runs adaptively.
func pipelinePredictor(cfg *Config, pipe *ml.Pipeline, outType types.DataType) *rt.PipelinePredictor {
	p := rt.NewPipelinePredictor(pipe, outType)
	if cfg.Tuner != nil && len(pipe.InputColumns) > 0 {
		if d, err := pipe.FeatureDim(len(pipe.InputColumns)); err == nil {
			p.BatchRows = cfg.Tuner.InferenceBatch(d)
		}
	}
	return p
}

// compileSplit lowers model/query splitting: the source plan is compiled
// once per branch with a complementary filter, each branch scores with its
// own sub-model, and the exchange unions the streams.
func compileSplit(s *ir.SplitNode, cfg *Config) ([]exec.Operator, error) {
	src, ok := s.In.(*ir.RelNode)
	if !ok {
		return nil, fmt.Errorf("codegen: split requires a relational source, got %T", s.In)
	}
	build := func(m ir.Node, cond expr.Expr) ([]exec.Operator, error) {
		parts, err := exec.CompileParts(src.Plan, env(cfg, nil))
		if err != nil {
			return nil, err
		}
		if ex, ok := exec.PushableExchange(parts); ok {
			if err := ex.Push(&exec.FilterStage{Pred: cond}); err != nil {
				return nil, err
			}
		} else {
			for i := range parts {
				parts[i] = &exec.FilterOp{Child: parts[i], Pred: cond}
			}
		}
		model, ok := m.(*ir.ModelNode)
		if !ok {
			return nil, fmt.Errorf("codegen: split branch must be a model node, got %T", m)
		}
		pipe := &ml.Pipeline{Final: model.M, InputColumns: model.InputCols}
		pred, err := buildPredictor(cfg, pipe, model.OutputCol.Type)
		if err != nil {
			return nil, err
		}
		return predictParts(cfg, parts, pred, model.OutputCol)
	}
	col := &expr.Column{Name: s.CondCol}
	leftParts, err := build(s.Left, expr.NewBinary(expr.OpLe, col, expr.FloatLit(s.Threshold)))
	if err != nil {
		return nil, err
	}
	rightParts, err := build(s.Right, expr.NewBinary(expr.OpGt, col, expr.FloatLit(s.Threshold)))
	if err != nil {
		return nil, err
	}
	return append(leftParts, rightParts...), nil
}

// udfOp applies an opaque batch function.
type udfOp struct {
	child  exec.Operator
	fn     func(*types.Batch) (*types.Batch, error)
	schema *types.Schema
}

func (u *udfOp) Schema() *types.Schema { return u.schema }
func (u *udfOp) Open() error           { return u.child.Open() }
func (u *udfOp) Close() error          { return u.child.Close() }
func (u *udfOp) Next() (*types.Batch, error) {
	b, err := u.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	return u.fn(b)
}

// GenerateSQL renders a best-effort SQL text for the optimized IR — the
// "new SQL query reflecting the optimizations" the Runtime Code Generator
// emits (§2). It is for inspection, not re-parsing fidelity.
func GenerateSQL(g *ir.Graph) string {
	var sb strings.Builder
	sb.WriteString("-- regenerated by Raven runtime code generator\n")
	for i, n := range g.Chain() {
		switch x := n.(type) {
		case *ir.RelNode:
			fmt.Fprintf(&sb, "-- stage %d (DB):\n%s", i, indentPlan(x.Plan))
		case *ir.TransformNode:
			fmt.Fprintf(&sb, "-- stage %d (ML): featurizer %s\n", i, x.T.Kind())
		case *ir.ModelNode:
			fmt.Fprintf(&sb, "-- stage %d (ML): PREDICT %s(%s) AS %s\n", i, x.M.Kind(), strings.Join(x.InputCols, ", "), x.OutputCol.Name)
		case *ir.LANode:
			fmt.Fprintf(&sb, "-- stage %d (ML): tensor graph (%d ops) over (%s) AS %s\n", i, x.G.NumNodes(), strings.Join(x.InputCols, ", "), x.OutputCol.Name)
		case *ir.SplitNode:
			fmt.Fprintf(&sb, "-- stage %d: UNION of %s <= %v and %s > %v branches\n", i, x.CondCol, x.Threshold, x.CondCol, x.Threshold)
		case *ir.UDFNode:
			fmt.Fprintf(&sb, "-- stage %d (ML): UDF %s\n", i, x.Name)
		}
	}
	return sb.String()
}

func indentPlan(p plan.Node) string {
	lines := strings.Split(strings.TrimRight(plan.Explain(p), "\n"), "\n")
	for i := range lines {
		lines[i] = "--   " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
