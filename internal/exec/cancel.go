package exec

import (
	"context"

	"raven/internal/types"
)

// ctxErr returns ctx.Err(), tolerating a nil context so operators can
// check cancellation unconditionally.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// CancelOp makes a serial pipeline cancellable: it polls its context
// between batches and fails with ctx.Err() once the deadline passes or the
// caller cancels. Compilation inserts one above every serial table scan so
// cancellation reaches plans that never cross a morsel exchange; parallel
// plans cancel inside Exchange itself.
type CancelOp struct {
	Ctx   context.Context
	Child Operator
}

// Schema implements Operator.
func (c *CancelOp) Schema() *types.Schema { return c.Child.Schema() }

// Open implements Operator.
func (c *CancelOp) Open() error {
	if err := ctxErr(c.Ctx); err != nil {
		return err
	}
	return c.Child.Open()
}

// Close implements Operator.
func (c *CancelOp) Close() error { return c.Child.Close() }

// Next implements Operator.
func (c *CancelOp) Next() (*types.Batch, error) {
	if err := ctxErr(c.Ctx); err != nil {
		return nil, err
	}
	return c.Child.Next()
}

// CollectContext drains op into a single batch, polling ctx between
// batches. Pipeline breakers use it to stay cancellable while
// materializing inputs whose own operators may be context-free.
func CollectContext(ctx context.Context, op Operator) (*types.Batch, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	out := types.NewBatch(op.Schema())
	for {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		if err := out.Append(b); err != nil {
			return nil, err
		}
	}
}
