// Command ravenbench regenerates every table and figure of the paper's
// evaluation and prints them in paper-figure form. With -markdown it emits
// the EXPERIMENTS.md body instead; with -json FILE it also records the
// selected tables (plus host parallelism) as JSON, which is how the
// checked-in BENCH_*.json result files are produced.
//
// Usage:
//
//	ravenbench [-quick] [-markdown] [-only Fig2a,Fig3] [-runs N] [-json FILE]
//	ravenbench -check FILE:ID[,FILE:ID...]
//
// -check validates previously recorded result files instead of running
// anything: each FILE must parse as a ravenbench -json recording that
// ran its experiments without failures and contains a table with the
// given ID holding at least one measured row. It is the CI guard
// against a silently-empty bench run committing a hollow BENCH file.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"raven/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sizes (seconds instead of minutes)")
	markdown := flag.Bool("markdown", false, "emit markdown tables (for EXPERIMENTS.md)")
	timeout := flag.Duration("timeout", 0, "skip experiments not yet started once the deadline passes (0 = no limit); an in-flight experiment runs to completion")
	only := flag.String("only", "", "comma-separated experiment ids (Fig2a,Fig2b,Fig2c,Fig2d,Fig3,PredPruning,BatchVsTuple,StaticAnalysis,RunningExample,ParallelScaling,ParallelBreakers,PreparedPredict,ServeConcurrency,MultiTenantServe,ClusterServe,CachedServe,DurableRecovery)")
	runs := flag.Int("runs", 0, "measured runs per point (default 3, or 1 with -quick)")
	parallelism := flag.Int("parallelism", 0, "degree of parallelism for experiment engines (0 = engine default, 1 = serial)")
	morsel := flag.Int("morsel", 0, "rows per parallel work unit (0 = engine default)")
	jsonPath := flag.String("json", "", "also write the selected tables as JSON to this file")
	check := flag.String("check", "", "validate recorded JSON result files instead of running: comma-separated FILE:ID entries")
	flag.Parse()

	if *check != "" {
		if err := checkRecordings(*check); err != nil {
			fmt.Fprintln(os.Stderr, "bench check FAILED:", err)
			os.Exit(1)
		}
		return
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	cfg.Parallelism = *parallelism
	cfg.MorselSize = *morsel

	type exp struct {
		id string
		fn func(bench.Config) (*bench.Table, error)
	}
	all := []exp{
		{"Fig2a", bench.Fig2a},
		{"Fig2b", bench.Fig2b},
		{"Fig2c", bench.Fig2c},
		{"Fig2d", bench.Fig2d},
		{"Fig3", bench.Fig3},
		{"PredPruning", bench.PredicatePruning},
		{"BatchVsTuple", bench.BatchVsTuple},
		{"StaticAnalysis", bench.StaticAnalysis},
		{"RunningExample", bench.RunningExample},
		{"ParallelScaling", bench.ParallelScaling},
		{"ParallelBreakers", bench.ParallelBreakers},
		{"PreparedPredict", bench.PreparedPredict},
		{"ServeConcurrency", bench.ServeConcurrency},
		{"MultiTenantServe", bench.MultiTenantServe},
		{"ClusterServe", bench.ClusterServe},
		{"CachedServe", bench.CachedServe},
		{"DurableRecovery", bench.DurableRecovery},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	failed := false
	var tables []*bench.Table
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "skipping %s and the rest: %v\n", e.id, err)
			failed = true
			break
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", e.id)
		tb, err := e.fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed = true
			continue
		}
		tables = append(tables, tb)
		if *markdown {
			fmt.Print(tb.Markdown())
		} else {
			tb.Print(os.Stdout)
		}
	}
	// Written even when every experiment failed: the Failed list is what
	// stops a stale results file from passing as a fresh successful run.
	if *jsonPath != "" {
		// Failed experiment ids are recorded so a partial file is
		// self-describing instead of passing as a complete run.
		var failedIDs []string
		for _, e := range all {
			if len(want) > 0 && !want[e.id] {
				continue
			}
			ran := false
			for _, tb := range tables {
				if tb.ID == e.id {
					ran = true
					break
				}
			}
			if !ran {
				failedIDs = append(failedIDs, e.id)
			}
		}
		out := bench.Recording{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Quick:      *quick,
			Runs:       cfg.Runs,
			Failed:     failedIDs,
			Tables:     tables,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			failed = true
		} else if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// requireAllocs lists experiments whose recordings must carry an
// allocs/row measurement: these are the data-plane gates, and a
// recording without the column would silently drop the allocation
// budget from CI.
var requireAllocs = map[string]bool{
	"ParallelScaling":  true,
	"ParallelBreakers": true,
}

// requireNote lists experiments whose recordings must carry a row note
// containing a specific proof string. ClusterServe's drain row asserts
// zero dropped queries during a graceful drain under load; CachedServe's
// staleness row asserts zero stale reads across INSERT/DDL/StoreModel;
// DurableRecovery's recovery rows assert byte-identical fingerprints
// across a crash. A recording without its note means the proving phase
// never ran, and CI must not accept it.
var requireNote = map[string]string{
	"ClusterServe":    "dropped=0",
	"CachedServe":     "stale=0",
	"DurableRecovery": "recovered=1",
}

// checkRecordings is the -check mode: every FILE:ID entry names a
// recorded results file and an experiment table that must be present
// with measured rows. A file recording failed experiments fails the
// check even if the requested table looks fine — partial runs must not
// pass as complete ones.
func checkRecordings(spec string) error {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		i := strings.LastIndex(entry, ":")
		if i <= 0 || i == len(entry)-1 {
			return fmt.Errorf("bad -check entry %q, want FILE:ID", entry)
		}
		file, id := entry[:i], entry[i+1:]
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		var rec bench.Recording
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("%s: not a ravenbench recording: %w", file, err)
		}
		if len(rec.Failed) > 0 {
			return fmt.Errorf("%s: recorded failed experiments %v", file, rec.Failed)
		}
		var tb *bench.Table
		for _, t := range rec.Tables {
			if t.ID == id {
				tb = t
				break
			}
		}
		if tb == nil {
			return fmt.Errorf("%s: no table %q (has %d tables)", file, id, len(rec.Tables))
		}
		if len(tb.Rows) == 0 {
			return fmt.Errorf("%s: table %q is empty", file, id)
		}
		for _, r := range tb.Rows {
			if r.Series == "" || r.Param == "" {
				return fmt.Errorf("%s: table %q has an unlabeled row: %+v", file, id, r)
			}
		}
		if requireAllocs[id] {
			found := false
			for _, r := range tb.Rows {
				if r.AllocsPerRow > 0 {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("%s: table %q has no allocs/row measurement (the data-plane experiments must record one)", file, id)
			}
		}
		if proof := requireNote[id]; proof != "" {
			found := false
			for _, r := range tb.Rows {
				if strings.Contains(r.Note, proof) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("%s: table %q has no row note containing %q (the recording must prove the drain phase ran clean)", file, id, proof)
			}
		}
		fmt.Printf("bench check ok: %s has %s with %d rows\n", file, id, len(tb.Rows))
	}
	return nil
}
