// Package cluster turns N ravenserved replicas into one serving
// endpoint: a health-checked, statement-aware router that speaks the
// same wire protocol as a single replica (internal/server), so the same
// client works against either.
//
// The pieces:
//
//   - ring.go: rendezvous (highest-random-weight) hashing gives every
//     tenant a stable home replica, keeping that replica's plan cache
//     and statement registry warm for the tenant's query shapes, with a
//     deterministic spill order when the home is saturated or down.
//   - member.go: replica membership. A reconciler loop probes each member's
//     /healthz on a jittered interval and converges the desired member
//     set (what the operator registered) with the actual one (what is
//     reachable, current, and accepting).
//   - replicate.go: the ordered side-effect log. DDL scripts and stored
//     models fan out to all members with catalog-version read-back;
//     members that miss entries (crash, restart, network) are repaired
//     by replaying the log before they take traffic again.
//   - router.go: the data plane — streaming query proxy with per-replica
//     retry (exponential backoff + jitter), optional hedged reads after
//     a p99-based delay, router-side prepared statements lazily prepared
//     per replica, and aggregated cluster stats.
package cluster

import (
	"hash/fnv"
	"sort"
)

// rankMembers orders member names by rendezvous (HRW) score for a
// tenant, highest first: index 0 is the tenant's home replica, the rest
// the deterministic spill order. Rendezvous hashing gives minimal
// disruption — adding or removing one member only moves the tenants
// whose top choice changed, so the other replicas' plan caches and
// statement registries stay warm.
func rankMembers(tenant string, names []string) []string {
	ranked := make([]string, len(names))
	copy(ranked, names)
	scores := make(map[string]uint64, len(names))
	for _, n := range ranked {
		scores[n] = hrwScore(tenant, n)
	}
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := scores[ranked[i]], scores[ranked[j]]
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j] // total order even on score ties
	})
	return ranked
}

// hrwScore hashes (tenant, member) into the weight the member bids for
// the tenant: the two FNV-1a hashes combined through a strong finalizer
// (splitmix64). Hashing the concatenation instead would correlate the
// member ordering across tenants — FNV's per-byte mixing is too weak to
// decorrelate a shared suffix — and skew every tenant onto the same few
// members.
func hrwScore(tenant, member string) uint64 {
	x := fnvSum(member) ^ (fnvSum(tenant) * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func fnvSum(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
