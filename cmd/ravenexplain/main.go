// Command ravenexplain shows Raven's optimizer at work on the paper's
// running example: the bound logical plan, the unified IR, the optimized
// IR with engine placement, and the regenerated SQL — Fig 1 as text.
//
// Usage:
//
//	ravenexplain [-rows N] [-query "SELECT ..."]
package main

import (
	"flag"
	"fmt"
	"os"

	"raven"
	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/train"
)

const runningExample = `
DECLARE @model = 'duration_of_stay';
WITH data AS (
  SELECT * FROM patient_info AS pi
  JOIN blood_tests AS bt ON pi.id = bt.id
  JOIN prenatal_tests AS pt ON bt.id = pt.id
)
SELECT d.id, p.length_of_stay
FROM PREDICT(MODEL = @model, DATA = data AS d)
WITH (length_of_stay FLOAT) AS p
WHERE d.pregnant = 1 AND p.length_of_stay > 0.5`

func main() {
	rows := flag.Int("rows", 10000, "rows per generated table")
	query := flag.String("query", runningExample, "inference query to explain")
	flag.Parse()

	db := raven.MustOpen()
	h, err := data.GenHospital(db.Catalog(), *rows, 4000, 42)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tree := train.FitTree(h.TrainX, h.TrainY, train.TreeOptions{MaxDepth: 5, MinLeaf: 20})
	if err := db.StoreModel("duration_of_stay", &ml.Pipeline{Final: tree, InputColumns: h.FeatureCols}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out, err := db.Explain(*query, raven.DefaultQueryOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(out)
}
