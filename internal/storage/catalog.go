package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Catalog names tables and the model store. It is the single source of
// truth the binder and the cross optimizer consult. With a durable
// backend attached, every schema mutation is WAL-logged before it
// applies; without one (the default) mutations apply directly in memory.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	Models *ModelStore
	// uniqueKeys records columns known to be unique per table (primary
	// keys). The relational optimizer uses this for join elimination.
	uniqueKeys map[string]map[string]bool
	// version counts schema-affecting mutations (DDL, unique-key changes,
	// model stores). Compiled-plan caches key on it so any change that
	// could invalidate a bound plan forces a recompile.
	version atomic.Uint64

	// backend, when non-nil, intercepts mutations for durability. Set
	// once via SetBackend before the catalog sees concurrent use.
	backend Backend
}

// NewCatalog returns an empty catalog with a fresh model store.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:     make(map[string]*Table),
		Models:     NewModelStore(),
		uniqueKeys: make(map[string]map[string]bool),
	}
}

func key(name string) string { return strings.ToLower(name) }

// SetBackend attaches a durability backend to the catalog, its model
// store, and every already-registered table. Recovery calls it after
// rebuilding state (so replay never re-logs); it must happen before the
// catalog sees concurrent use.
func (c *Catalog) SetBackend(b Backend) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.backend = b
	for _, t := range c.tables {
		t.backend = b
	}
	c.Models.setBackend(b)
}

// Version returns the current catalog version. It changes whenever a
// table is added or dropped, a unique key is declared, or BumpVersion is
// called (the engine does so on model stores).
func (c *Catalog) Version() uint64 { return c.version.Load() }

// BumpVersion invalidates plans compiled against the previous catalog
// state and returns the new version.
func (c *Catalog) BumpVersion() uint64 { return c.version.Add(1) }

// AddTable registers a table; it fails if the name is taken.
func (c *Catalog) AddTable(t *Table) error {
	if c.backend != nil {
		return c.backend.CreateTable(c, t)
	}
	return c.addTableLocal(t)
}

func (c *Catalog) addTableLocal(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(t.Name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("storage: table %q already exists", t.Name)
	}
	c.tables[k] = t
	c.version.Add(1)
	return nil
}

// DropTable removes a table by name.
func (c *Catalog) DropTable(name string) error {
	if c.backend != nil {
		return c.backend.DropTable(c, name)
	}
	return c.dropTableLocal(name)
}

func (c *Catalog) dropTableLocal(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		return fmt.Errorf("storage: table %q does not exist", name)
	}
	delete(c.tables, k)
	delete(c.uniqueKeys, k)
	c.version.Add(1)
	return nil
}

// Table looks a table up by (case-insensitive) name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("storage: table %q does not exist", name)
	}
	return t, nil
}

// HasTable reports whether a table with the given name exists.
func (c *Catalog) HasTable(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[key(name)]
	return ok
}

// TableNames returns all table names, sorted.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// SetUniqueKey declares that column col of table is unique (e.g. a primary
// key). Join elimination relies on this. The error is always nil for
// in-memory catalogs; durable ones can fail to log.
func (c *Catalog) SetUniqueKey(table, col string) error {
	if c.backend != nil {
		return c.backend.SetUniqueKey(c, table, col)
	}
	c.setUniqueKeyLocal(table, col)
	return nil
}

func (c *Catalog) setUniqueKeyLocal(table, col string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(table)
	if c.uniqueKeys[k] == nil {
		c.uniqueKeys[k] = make(map[string]bool)
	}
	c.uniqueKeys[k][key(col)] = true
	c.version.Add(1)
}

// IsUniqueKey reports whether col is a declared unique key of table.
func (c *Catalog) IsUniqueKey(table, col string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.uniqueKeys[key(table)][key(col)]
}

// UniqueKeys returns the declared unique-key columns of table, sorted —
// what the durable manifest records.
func (c *Catalog) UniqueKeys(table string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cols := c.uniqueKeys[key(table)]
	out := make([]string, 0, len(cols))
	for col := range cols {
		out = append(out, col)
	}
	sort.Strings(out)
	return out
}
