// Package ir defines Raven's unified intermediate representation (paper
// §3): a single DAG mixing relational-algebra (RA) operators, classical-ML
// operators and featurizers (MLD), linear-algebra graphs (LA), and opaque
// UDFs. SQL queries lower into RA nodes; model pipelines extracted by the
// static analyzer lower into MLD chains; NN translation rewrites MLD chains
// into LA nodes. The cross optimizer (package xopt) rewrites this graph.
package ir

import (
	"fmt"
	"strings"

	"raven/internal/ml"
	"raven/internal/ort"
	"raven/internal/plan"
	"raven/internal/types"
)

// Category classifies operators per the paper's taxonomy (§3.1).
type Category uint8

// Operator categories.
const (
	RA Category = iota
	LA
	MLD
	UDF
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case RA:
		return "RA"
	case LA:
		return "LA"
	case MLD:
		return "MLD"
	default:
		return "UDF"
	}
}

// Engine names the runtime chosen to execute a node (paper §4.3: part of
// optimization is picking the engine per operator).
type Engine uint8

// Engines.
const (
	EngineUnassigned Engine = iota
	EngineDB
	EngineML
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineDB:
		return "db"
	case EngineML:
		return "ml"
	default:
		return "?"
	}
}

// Node is one unified-IR operator.
type Node interface {
	// Input returns the upstream node (nil for sources).
	Input() Node
	// SetInput replaces the upstream node.
	SetInput(Node)
	// Cat is the operator category.
	Cat() Category
	fmt.Stringer
}

// RelNode wraps a relational subplan. For graph sources, Plan is a full
// scan/join/filter tree and In is nil. Elsewhere Plan operates on the rows
// produced by In, with a plan.Input placeholder at its leaf.
type RelNode struct {
	Plan   plan.Node
	In     Node
	Engine Engine
}

// Input implements Node.
func (n *RelNode) Input() Node { return n.In }

// SetInput implements Node.
func (n *RelNode) SetInput(i Node) { n.In = i }

// Cat implements Node.
func (n *RelNode) Cat() Category { return RA }

func (n *RelNode) String() string {
	first := strings.SplitN(plan.Explain(n.Plan), "\n", 2)[0]
	return fmt.Sprintf("RA:%s", first)
}

// TransformNode is one featurization step (MLD category).
type TransformNode struct {
	T      ml.Transformer
	In     Node
	Engine Engine
}

// Input implements Node.
func (n *TransformNode) Input() Node { return n.In }

// SetInput implements Node.
func (n *TransformNode) SetInput(i Node) { n.In = i }

// Cat implements Node.
func (n *TransformNode) Cat() Category { return MLD }

func (n *TransformNode) String() string { return "MLD:transform:" + n.T.Kind() }

// ModelNode is the final predictor of a pipeline (MLD category). Its
// output is the input rows with OutputCol appended.
type ModelNode struct {
	M ml.Model
	// InputCols names the relational columns feeding feature 0..d-1 of the
	// first transform (or the model itself when there are no transforms).
	InputCols []string
	OutputCol types.Column
	In        Node
	Engine    Engine
}

// Input implements Node.
func (n *ModelNode) Input() Node { return n.In }

// SetInput implements Node.
func (n *ModelNode) SetInput(i Node) { n.In = i }

// Cat implements Node.
func (n *ModelNode) Cat() Category { return MLD }

func (n *ModelNode) String() string {
	return fmt.Sprintf("MLD:model:%s -> %s", n.M.Kind(), n.OutputCol.Name)
}

// LANode holds a compiled tensor graph (the result of NN translation).
// Input "X" of the graph is fed from InputCols; output "Y" lands in
// OutputCol.
type LANode struct {
	G         *ort.Graph
	InputCols []string
	OutputCol types.Column
	In        Node
	Engine    Engine
	// UseGPU requests the simulated accelerator provider.
	UseGPU bool
}

// Input implements Node.
func (n *LANode) Input() Node { return n.In }

// SetInput implements Node.
func (n *LANode) SetInput(i Node) { n.In = i }

// Cat implements Node.
func (n *LANode) Cat() Category { return LA }

func (n *LANode) String() string {
	return fmt.Sprintf("LA:graph(%d nodes) -> %s", n.G.NumNodes(), n.OutputCol.Name)
}

// UDFNode wraps opaque row-at-a-time code the static analyzer could not
// translate (paper §3.1). Fn maps an input batch to an output batch.
type UDFNode struct {
	Name   string
	Fn     func(*types.Batch) (*types.Batch, error)
	Out    *types.Schema
	In     Node
	Engine Engine
}

// Input implements Node.
func (n *UDFNode) Input() Node { return n.In }

// SetInput implements Node.
func (n *UDFNode) SetInput(i Node) { n.In = i }

// Cat implements Node.
func (n *UDFNode) Cat() Category { return UDF }

func (n *UDFNode) String() string { return "UDF:" + n.Name }

// SplitNode unions two alternative subchains, each guarded by a predicate
// on the source rows — the result of model/query splitting (paper §2).
// Rows satisfying Cond flow through Left, the rest through Right.
type SplitNode struct {
	CondCol   string // source column tested
	Threshold float64
	// Left handles rows with CondCol <= Threshold, Right the rest.
	Left, Right Node
	In          Node
}

// Input implements Node.
func (n *SplitNode) Input() Node { return n.In }

// SetInput implements Node.
func (n *SplitNode) SetInput(i Node) { n.In = i }

// Cat implements Node.
func (n *SplitNode) Cat() Category { return RA }

func (n *SplitNode) String() string {
	return fmt.Sprintf("RA:split(%s <= %v)", n.CondCol, n.Threshold)
}

// Graph is a unified-IR plan: a chain/DAG ending at Root (typically
// sink-RA ← model ← transforms ← source-RA).
type Graph struct {
	Root Node
}

// Chain returns the nodes from source to root, linearized. SplitNode
// branches contribute their nodes depth-first.
func (g *Graph) Chain() []Node {
	var out []Node
	var walk func(n Node)
	walk = func(n Node) {
		if n == nil {
			return
		}
		walk(n.Input())
		if s, ok := n.(*SplitNode); ok {
			walk(s.Left)
			walk(s.Right)
		}
		out = append(out, n)
	}
	walk(g.Root)
	return out
}

// Source returns the bottom-most node.
func (g *Graph) Source() Node {
	n := g.Root
	for n.Input() != nil {
		n = n.Input()
	}
	return n
}

// Explain renders the IR with categories and engine assignments, the
// unified-IR view the paper's Fig 1 shows.
func (g *Graph) Explain() string {
	var sb strings.Builder
	nodes := g.Chain()
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		eng := ""
		switch x := n.(type) {
		case *RelNode:
			eng = x.Engine.String()
		case *TransformNode:
			eng = x.Engine.String()
		case *ModelNode:
			eng = x.Engine.String()
		case *LANode:
			eng = x.Engine.String()
		case *UDFNode:
			eng = x.Engine.String()
		}
		fmt.Fprintf(&sb, "[%s/%s] %s\n", n.Cat(), eng, n)
	}
	return sb.String()
}

// Find returns the first node in the chain satisfying pred, or nil.
func (g *Graph) Find(pred func(Node) bool) Node {
	for _, n := range g.Chain() {
		if pred(n) {
			return n
		}
	}
	return nil
}

// CountCategory counts chain nodes in the given category.
func (g *Graph) CountCategory(c Category) int {
	n := 0
	for _, node := range g.Chain() {
		if node.Cat() == c {
			n++
		}
	}
	return n
}
