package raven

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// cacheTestDB is a small engine with the result cache on and a tiny
// scratch table the invalidation tests mutate.
func cacheTestDB(t *testing.T, cacheBytes int64, opts ...Option) *DB {
	t.Helper()
	db := MustOpen(append([]Option{WithResultCache(cacheBytes)}, opts...)...)
	if err := db.Exec(`CREATE TABLE t (id INT, x FLOAT);
		INSERT INTO t VALUES (1, 1.5), (2, 2.5), (3, 3.5)`); err != nil {
		t.Fatal(err)
	}
	return db
}

func collectIDs(t *testing.T, rows *Rows, err error) []int64 {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	return append([]int64(nil), res.Batch.Vecs[0].Ints...)
}

func queryIDs(t *testing.T, db *DB, ctx context.Context, q string) []int64 {
	t.Helper()
	rows, err := db.QueryContext(ctx, q)
	return collectIDs(t, rows, err)
}

func stmtIDs(t *testing.T, st *Stmt, params ...Param) []int64 {
	t.Helper()
	rows, err := st.Query(params...)
	return collectIDs(t, rows, err)
}

func TestResultCacheHitServesSameRows(t *testing.T) {
	db := cacheTestDB(t, 1<<20)
	const q = `SELECT id FROM t WHERE x > 2.0`
	first := queryIDs(t, db, context.Background(), q)
	second := queryIDs(t, db, context.Background(), q)
	if fmt.Sprint(first) != fmt.Sprint(second) || len(first) != 2 {
		t.Fatalf("rows drifted: %v vs %v", first, second)
	}
	rc := db.Stats().ResultCache
	if rc == nil {
		t.Fatal("ResultCache stats missing")
	}
	if rc.Hits != 1 || rc.Misses != 1 || rc.Entries != 1 {
		t.Fatalf("stats = %+v", rc)
	}
}

// TestResultCacheInsertInvalidation is the INSERT-gap regression for the
// embedded API: the catalog version does not move on INSERT, so only the
// table data version can keep the cache honest.
func TestResultCacheInsertInvalidation(t *testing.T) {
	db := cacheTestDB(t, 1<<20)
	const q = `SELECT id FROM t WHERE x > 2.0`
	if got := queryIDs(t, db, context.Background(), q); len(got) != 2 {
		t.Fatalf("seed rows = %v", got)
	}
	catalogBefore := db.CatalogVersion()
	if err := db.Exec(`INSERT INTO t VALUES (4, 9.0)`); err != nil {
		t.Fatal(err)
	}
	if db.CatalogVersion() != catalogBefore {
		t.Fatal("INSERT bumped the catalog version — this test no longer covers the gap")
	}
	got := queryIDs(t, db, context.Background(), q)
	if len(got) != 3 || got[2] != 4 {
		t.Fatalf("stale read after INSERT: %v", got)
	}
	rc := db.Stats().ResultCache
	if rc.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1 (stats %+v)", rc.Invalidations, rc)
	}
}

func TestResultCacheDDLAndModelInvalidation(t *testing.T) {
	db, err := genHospitalInto(MustOpen(WithResultCache(1<<22)), 500)
	if err != nil {
		t.Fatal(err)
	}
	want := queryIDs(t, db, context.Background(), predictQuery)
	if got := queryIDs(t, db, context.Background(), predictQuery); len(got) != len(want) {
		t.Fatalf("cached read drifted: %d vs %d rows", len(got), len(want))
	}
	hitsAfterWarm := db.Stats().ResultCache.Hits

	// DDL bumps the catalog: the cached entry must die.
	if err := db.Exec(`CREATE TABLE unrelated (id INT)`); err != nil {
		t.Fatal(err)
	}
	if got := queryIDs(t, db, context.Background(), predictQuery); len(got) != len(want) {
		t.Fatalf("read after DDL drifted: %d rows", len(got))
	}

	// Re-storing the model bumps the catalog too: plans embedding the old
	// model and results computed by it both go.
	pipe, err := db.LoadModel("duration_of_stay")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.StoreModel("duration_of_stay", pipe); err != nil {
		t.Fatal(err)
	}
	if got := queryIDs(t, db, context.Background(), predictQuery); len(got) != len(want) {
		t.Fatalf("read after model store drifted: %d rows", len(got))
	}

	rc := db.Stats().ResultCache
	if rc.Hits != hitsAfterWarm {
		t.Fatalf("a post-invalidation read hit the cache: %+v", rc)
	}
	if rc.Invalidations < 2 {
		t.Fatalf("invalidations = %d, want >= 2", rc.Invalidations)
	}
}

// TestResultCacheSingleflightCollapse drives 32 concurrent identical
// queries into a cold cache: exactly one executes (one scheduler
// admission, MaxActive <= 1), the rest are served from its flight.
// TestDropTableSweepsCaches pins the proactive sweep: cached plans and
// results pin the tables their plans scan, so a DROP TABLE must unpin
// them on the catalog bump itself — not when LRU pressure or a chance
// lookup eventually touches each entry (on a quiet cache, never).
func TestDropTableSweepsCaches(t *testing.T) {
	db := cacheTestDB(t, 1<<20)
	const q = `SELECT id FROM t WHERE x > 2.0`
	queryIDs(t, db, context.Background(), q) // warm plan + result caches
	if db.plans.len() == 0 || db.results.Stats().Entries == 0 {
		t.Fatal("warm-up did not populate the caches")
	}
	if err := db.Exec(`DROP TABLE t`); err != nil {
		t.Fatal(err)
	}
	if n := db.plans.len(); n != 0 {
		t.Fatalf("plan cache still holds %d entries after DROP TABLE", n)
	}
	if s := db.results.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("result cache still holds data after DROP TABLE: %+v", s)
	}
}

// TestAbandonedLeaderRowsReleasesWaiters pins the leaked-leader path: a
// flight leader whose Rows is dropped without Next-to-EOF or Close must
// not wedge every later identical query in Do forever — the GC cleanup
// cancels the unsettled flight once the Rows is collected.
func TestAbandonedLeaderRowsReleasesWaiters(t *testing.T) {
	db := cacheTestDB(t, 1<<20)
	const q = `SELECT id FROM t WHERE x > 2.0`
	func() {
		rows, err := db.QueryContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		_ = rows // abandoned: never drained, never closed
	}()
	type res struct {
		n   int
		err error
	}
	done := make(chan res, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		rows, err := db.QueryContext(ctx, q)
		if err != nil {
			done <- res{0, err}
			return
		}
		r, err := rows.Collect()
		if err != nil {
			done <- res{0, err}
			return
		}
		done <- res{r.Batch.Len(), nil}
	}()
	deadline := time.After(15 * time.Second)
	for {
		runtime.GC() // drive the Rows cleanup
		select {
		case got := <-done:
			if got.err != nil || got.n != 2 {
				t.Fatalf("waiter result: %d rows, err %v", got.n, got.err)
			}
			return
		case <-deadline:
			t.Fatal("waiter still blocked on the abandoned leader's flight")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestResultCacheSingleflightCollapse(t *testing.T) {
	db := MustOpen(WithResultCache(1<<22), WithParallelism(1),
		WithMaxConcurrentQueries(4), WithSchedulerQueue(64, 0))
	if _, err := genHospitalInto(db, 2000); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	const n = 32
	var wg sync.WaitGroup
	lens := make([]int, n)
	errs := make(chan error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := db.QueryWithOptions(predictQuery, DefaultQueryOptions())
			if err != nil {
				errs <- err
				return
			}
			lens[i] = res.Batch.Len()
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if lens[i] != lens[0] {
			t.Fatalf("row counts diverged: %v", lens)
		}
	}
	rc := db.Stats().ResultCache
	if rc.Misses != 1 || rc.Hits != n-1 {
		t.Fatalf("misses=%d hits=%d, want 1/%d (collapsed=%d)", rc.Misses, rc.Hits, n-1, rc.Collapsed)
	}
	// Setup scripts and the one flight leader each ran alone: the
	// scheduler never saw two concurrent admissions, because 31 of the 32
	// queries never touched it.
	if ma := db.Stats().Scheduler.MaxActive; ma > 1 {
		t.Fatalf("MaxActive = %d, want <= 1", ma)
	}
	assertGoroutinesReturn(t, base)
}

func TestResultCacheEvictionUnderBytePressure(t *testing.T) {
	db := MustOpen(WithResultCache(2048), WithParallelism(1))
	if err := db.Exec(`CREATE TABLE big (id INT, x FLOAT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := db.Exec(fmt.Sprintf(`INSERT INTO big VALUES (%d, %d.5)`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Each distinct query caches ~40 ids (~384 bytes + overhead): a few
	// of them overflow the 2KB budget.
	for round := 0; round < 8; round++ {
		q := fmt.Sprintf(`SELECT id FROM big WHERE x > -%d.0`, round+1)
		if got := queryIDs(t, db, context.Background(), q); len(got) != 40 {
			t.Fatalf("round %d: %d rows", round, len(got))
		}
	}
	rc := db.Stats().ResultCache
	if rc.Evictions == 0 {
		t.Fatalf("no evictions under byte pressure: %+v", rc)
	}
	if rc.Bytes > rc.MaxBytes {
		t.Fatalf("over budget: %+v", rc)
	}
	// Evicted entries re-execute correctly.
	if got := queryIDs(t, db, context.Background(), `SELECT id FROM big WHERE x > -1.0`); len(got) != 40 {
		t.Fatalf("post-eviction read: %d rows", len(got))
	}
}

// TestResultCacheOversizeAbandonedMidStream: a result that outgrows the
// per-entry cap (maxBytes/4) is dropped while streaming — the query
// itself still returns every row, and nothing lands in the cache.
func TestResultCacheOversizeAbandoned(t *testing.T) {
	db := MustOpen(WithResultCache(4096), WithParallelism(1)) // entry cap: 1KB
	if err := db.Exec(`CREATE TABLE big (id INT, x FLOAT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := db.Exec(fmt.Sprintf(`INSERT INTO big VALUES (%d, %d.5)`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	const q = `SELECT id, x FROM big WHERE x > -1.0`
	if got := queryIDs(t, db, context.Background(), q); len(got) != 200 {
		t.Fatalf("rows = %d", len(got))
	}
	rc := db.Stats().ResultCache
	if rc.Abandoned != 1 || rc.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 abandoned, 0 entries", rc)
	}
	// The next identical query misses (nothing was cached) and still
	// returns the full result.
	if got := queryIDs(t, db, context.Background(), q); len(got) != 200 {
		t.Fatalf("re-read rows = %d", len(got))
	}
	if rc := db.Stats().ResultCache; rc.Hits != 0 {
		t.Fatalf("oversize result served from cache: %+v", rc)
	}
}

func TestResultCacheTenantBilledHits(t *testing.T) {
	db := cacheTestDB(t, 1<<20)
	const q = `SELECT id FROM t WHERE x > 2.0`
	acme := ContextWithTenant(context.Background(), "acme", 0)
	queryIDs(t, db, acme, q)                 // miss: leader, billed to no one
	queryIDs(t, db, acme, q)                 // hit: billed to acme
	queryIDs(t, db, context.Background(), q) // hit: default tenant
	opts := DefaultQueryOptions()
	opts.Tenant = "beta"
	rows, err := db.QueryContextWithOptions(context.Background(), q, opts)
	collectIDs(t, rows, err) // hit: options-level tag
	rc := db.Stats().ResultCache
	want := map[string]uint64{"acme": 1, "default": 1, "beta": 1}
	for tenant, n := range want {
		if rc.HitsByTenant[tenant] != n {
			t.Fatalf("HitsByTenant = %v, want %v", rc.HitsByTenant, want)
		}
	}
}

func TestResultCacheBypasses(t *testing.T) {
	db := cacheTestDB(t, 1<<20)
	const q = `SELECT id FROM t WHERE x > 2.0`

	opts := DefaultQueryOptions()
	opts.NoResultCache = true
	for i := 0; i < 2; i++ {
		rows, err := db.QueryContextWithOptions(context.Background(), q, opts)
		collectIDs(t, rows, err)
	}
	ctx := ContextWithoutResultCache(context.Background())
	queryIDs(t, db, ctx, q)
	cold := DefaultQueryOptions()
	cold.DisablePlanCache = true
	rows, err := db.QueryContextWithOptions(context.Background(), q, cold)
	collectIDs(t, rows, err)

	rc := db.Stats().ResultCache
	if rc.Hits != 0 || rc.Misses != 0 || rc.Entries != 0 {
		t.Fatalf("bypassed calls touched the cache: %+v", rc)
	}
}

// TestResultCacheSideEffectScriptsNeverCached: a script with an INSERT
// must run its side effect on every call, so it can neither populate
// nor be served from the cache.
func TestResultCacheSideEffectScriptNotCached(t *testing.T) {
	db := cacheTestDB(t, 1<<20)
	const script = `INSERT INTO t VALUES (100, 50.0); SELECT id FROM t WHERE x > 40.0`
	if got := queryIDs(t, db, context.Background(), script); len(got) != 1 {
		t.Fatalf("first run rows = %v", got)
	}
	if got := queryIDs(t, db, context.Background(), script); len(got) != 2 {
		t.Fatalf("second run rows = %v — the INSERT was skipped or the result served stale", got)
	}
	if rc := db.Stats().ResultCache; rc.Hits != 0 || rc.Misses != 0 {
		t.Fatalf("side-effect script consulted the cache: %+v", rc)
	}
}

func TestPreparedResultCacheParamsKeying(t *testing.T) {
	db, err := genHospitalInto(MustOpen(WithResultCache(1<<22)), 500)
	if err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare(`SELECT id FROM patient_info WHERE age > @minage`)
	if err != nil {
		t.Fatal(err)
	}
	a1 := stmtIDs(t, st, P("minage", "30"))
	a2 := stmtIDs(t, st, P("minage", "30"))
	b := stmtIDs(t, st, P("minage", "80"))
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Fatalf("same params drifted: %d vs %d rows", len(a1), len(a2))
	}
	if len(b) >= len(a1) {
		t.Fatalf("param keying broken: minage=80 returned %d rows vs %d", len(b), len(a1))
	}
	rc := db.Stats().ResultCache
	if rc.Hits != 1 || rc.Misses != 2 {
		t.Fatalf("stats = %+v, want hits=1 misses=2", rc)
	}

	// INSERT invalidation through the prepared surface.
	if err := db.Exec(`INSERT INTO patient_info VALUES (100000, 99.0, 0, 0, 80.0)`); err != nil {
		t.Fatal(err)
	}
	after := stmtIDs(t, st, P("minage", "30"))
	if len(after) != len(a1)+1 {
		t.Fatalf("stale prepared read after INSERT: %d rows, want %d", len(after), len(a1)+1)
	}
}
