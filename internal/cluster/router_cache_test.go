package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"testing"
	"time"

	"raven/internal/server"
)

// routerPost posts a QueryRequest to the router and returns the
// response headers plus the raw NDJSON body.
func routerPost(t *testing.T, base, path string, req server.QueryRequest) (*http.Response, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// rowCount counts NDJSON row lines (the ones that are arrays).
func rowCount(body string) int {
	n := 0
	for _, line := range bytes.Split([]byte(body), []byte("\n")) {
		if len(line) > 0 && line[0] == '[' {
			n++
		}
	}
	return n
}

// TestRouterResponseCache drives the router's response cache: a repeat
// read is served by the router itself (X-Raven-Cache: hit, no replica
// round-trip), a replicated INSERT moves the log head and so
// invalidates every entry, and no_cache bypasses lookup and population.
func TestRouterResponseCache(t *testing.T) {
	base := runtime.NumGoroutine()
	tc := newTestClusterOpts(t, 2, Options{
		ProbeInterval:    50 * time.Millisecond,
		ResultCacheBytes: 1 << 20,
	})
	defer func() {
		tc.close(t)
		assertGoroutinesReturn(t, base)
	}()
	tc.seedData(t, 64)

	routedBefore := tc.rt.routed.Load()
	r1, b1 := routerPost(t, tc.c.Base, "/query", server.QueryRequest{SQL: testQuery, Tenant: "acme"})
	if r1.StatusCode != http.StatusOK || rowCount(b1) != 32 {
		t.Fatalf("cold read: status %d, %d rows", r1.StatusCode, rowCount(b1))
	}
	if r1.Header.Get("X-Raven-Cache") == "hit" {
		t.Fatal("cold read claimed a cache hit")
	}
	r2, b2 := routerPost(t, tc.c.Base, "/query", server.QueryRequest{SQL: testQuery, Tenant: "acme"})
	if r2.Header.Get("X-Raven-Cache") != "hit" {
		t.Fatal("repeat read not served from the response cache")
	}
	if b2 != b1 {
		t.Fatalf("cached body diverged from original:\n%q\nvs\n%q", b2, b1)
	}
	if got := tc.rt.routed.Load(); got != routedBefore+1 {
		t.Fatalf("routed=%d after a cold+cached pair, want %d (hits must skip routing)", got, routedBefore+1)
	}
	st := tc.rt.Stats(context.Background())
	if st.Router.Cache == nil || st.Router.Cache.Hits != 1 {
		t.Fatalf("cache stats: %+v", st.Router.Cache)
	}

	// no_cache: forwarded to a replica, cache untouched either way.
	r3, _ := routerPost(t, tc.c.Base, "/query", server.QueryRequest{SQL: testQuery, Tenant: "acme", NoCache: true})
	if r3.Header.Get("X-Raven-Cache") == "hit" {
		t.Fatal("no_cache request served from cache")
	}
	after := tc.rt.respCache.Stats()
	if after.Hits != 1 || after.Misses != st.Router.Cache.Misses {
		t.Fatalf("no_cache touched the cache: before %+v after %+v", st.Router.Cache, after)
	}

	// A replicated INSERT moves the log head: the cached read is dead and
	// the next read sees the new row on whichever replica serves it.
	if err := tc.c.Exec("INSERT INTO pts VALUES (7, 1.0, 1.0)"); err != nil {
		t.Fatal(err)
	}
	r4, b4 := routerPost(t, tc.c.Base, "/query", server.QueryRequest{SQL: testQuery, Tenant: "acme"})
	if r4.Header.Get("X-Raven-Cache") == "hit" {
		t.Fatal("read after INSERT served from the pre-INSERT cache")
	}
	if rowCount(b4) != 33 {
		t.Fatalf("stale read after replicated INSERT: %d rows, want 33", rowCount(b4))
	}
	// And the fresh result is cacheable again under the new head.
	if r5, _ := routerPost(t, tc.c.Base, "/query", server.QueryRequest{SQL: testQuery, Tenant: "acme"}); r5.Header.Get("X-Raven-Cache") != "hit" {
		t.Fatal("read under the new log head did not repopulate the cache")
	}
}

// TestRouterCacheWriteFanoutWindow pins the write fan-out race: after a
// side effect is appended to the log (head = N, cache cleared) but
// before fan-out applies it to the replicas, every replica is still
// routable while serving pre-write data. A cacheable read dispatched in
// that window is keyed under seq N, so capturing it would serve the
// pre-write body as a cache hit for every identical read after the
// write acks. The capture must be refused (the serving member's
// pre-dispatch appliedSeq is behind the key's seq).
func TestRouterCacheWriteFanoutWindow(t *testing.T) {
	base := runtime.NumGoroutine()
	tc := newTestClusterOpts(t, 2, Options{
		ProbeInterval:    time.Hour, // reconciliation driven manually below
		ResultCacheBytes: 1 << 20,
	})
	defer func() {
		tc.close(t)
		assertGoroutinesReturn(t, base)
	}()
	tc.seedData(t, 64)

	// Freeze the cluster mid-fan-out: append the write to the log
	// (bumping the head and clearing the cache, exactly what replicate
	// does first) without applying it to any replica yet.
	tc.rt.appendEntry(logEntry{kind: entryScript, sql: "INSERT INTO pts VALUES (7, 1.0, 1.0)", tenant: "acme"})

	// A read in the window is served by a replica that has not applied
	// the write — fine for this one client, but it must not enter the
	// cache under the post-write seq.
	r1, b1 := routerPost(t, tc.c.Base, "/query", server.QueryRequest{SQL: testQuery, Tenant: "acme"})
	if r1.StatusCode != http.StatusOK || rowCount(b1) != 32 {
		t.Fatalf("window read: status %d, %d rows", r1.StatusCode, rowCount(b1))
	}

	// Finish the fan-out (what replicate's goroutines or the reconciler
	// would do): every replica applies the write.
	for _, m := range tc.rt.snapshotMembers() {
		if err := tc.rt.syncMember(context.Background(), m); err != nil {
			t.Fatalf("sync %s: %v", m.name, err)
		}
	}

	// The same read after the write acks must see the new row; a cache
	// hit here would replay the 32-row window capture.
	r2, b2 := routerPost(t, tc.c.Base, "/query", server.QueryRequest{SQL: testQuery, Tenant: "acme"})
	if r2.Header.Get("X-Raven-Cache") == "hit" {
		t.Fatal("read served from a response captured mid-fan-out")
	}
	if rowCount(b2) != 33 {
		t.Fatalf("stale read after write fan-out: %d rows, want 33", rowCount(b2))
	}
	// Captured from a fully-applied replica, the result caches again.
	if r3, _ := routerPost(t, tc.c.Base, "/query", server.QueryRequest{SQL: testQuery, Tenant: "acme"}); r3.Header.Get("X-Raven-Cache") != "hit" {
		t.Fatal("fresh read did not repopulate the cache")
	}
}

// TestRouterResponseCachePrepared covers the prepared route: hits keyed
// by statement id + parameter values, invalidated by log appends like
// ad-hoc reads.
func TestRouterResponseCachePrepared(t *testing.T) {
	base := runtime.NumGoroutine()
	tc := newTestClusterOpts(t, 2, Options{
		ProbeInterval:    50 * time.Millisecond,
		ResultCacheBytes: 1 << 20,
	})
	defer func() {
		tc.close(t)
		assertGoroutinesReturn(t, base)
	}()
	tc.seedData(t, 64)

	pr, err := tc.c.Prepare(server.QueryRequest{SQL: "SELECT id FROM pts WHERE id < @lim", Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	exec := func(lim string) (*http.Response, string) {
		return routerPost(t, tc.c.Base, "/stmt/"+pr.ID+"/query", server.QueryRequest{
			Params: map[string]string{"lim": lim},
		})
	}
	if r, b := exec("10"); r.Header.Get("X-Raven-Cache") == "hit" || rowCount(b) != 10 {
		t.Fatalf("cold prepared exec: cache=%q rows=%d", r.Header.Get("X-Raven-Cache"), rowCount(b))
	}
	if r, _ := exec("10"); r.Header.Get("X-Raven-Cache") != "hit" {
		t.Fatal("repeat prepared exec not cached")
	}
	// A different parameter value is a different result.
	if r, b := exec("20"); r.Header.Get("X-Raven-Cache") == "hit" || rowCount(b) != 20 {
		t.Fatalf("distinct params served from cache: cache=%q rows=%d", r.Header.Get("X-Raven-Cache"), rowCount(b))
	}
	// Log append invalidates prepared-read entries too.
	if err := tc.c.Exec("INSERT INTO pts VALUES (5, 0.5, 2.0)"); err != nil {
		t.Fatal(err)
	}
	if r, b := exec("10"); r.Header.Get("X-Raven-Cache") == "hit" || rowCount(b) != 11 {
		t.Fatalf("prepared read stale after INSERT: cache=%q rows=%d", r.Header.Get("X-Raven-Cache"), rowCount(b))
	}
}
