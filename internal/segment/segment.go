// Package segment implements immutable columnar segment files: when a
// durable table's in-memory tail reaches the configured row count it is
// sealed into one of these, and scans stream it back without ever
// materializing the whole segment — which is what lets a table exceed
// RAM.
//
// File layout:
//
//	[magic "RVNSEG1\x00"]
//	column blocks, back to back (offsets recorded in the footer):
//	    [null words, 8·⌈rows/64⌉ bytes, present only when the column has NULLs]
//	    [data: FLOAT/INT 8·rows LE; BOOL rows bytes;
//	           VARCHAR (rows+1)·u32 cumulative offsets then the blob]
//	[footer JSON]
//	[footerLen u32][footerCRC u32][magic "RVNSFTR1"]
//
// The footer carries per-column offsets, min/max statistics and the row
// count, plus a CRC32C over every byte before it; the trailer carries a
// CRC over the footer itself. Open verifies the trailer and footer —
// cheap, constant-size reads — and Verify streams the data CRC, which
// recovery runs once per segment before trusting it.
package segment

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"raven/internal/types"
)

var (
	fileMagic    = []byte("RVNSEG1\x00")
	trailerMagic = []byte("RVNSFTR1")
	castagnoli   = crc32.MakeTable(crc32.Castagnoli)
)

const trailerSize = 16 // footerLen + footerCRC + trailerMagic

// colMeta locates and summarizes one column block.
type colMeta struct {
	Name  string  `json:"name"`
	Type  uint8   `json:"type"`
	Off   int64   `json:"off"`
	Len   int64   `json:"len"`
	Nulls bool    `json:"nulls,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	// HasStats marks Min/Max as meaningful: numeric column with at
	// least one non-NULL row.
	HasStats bool `json:"has_stats,omitempty"`
}

type footer struct {
	Rows    int       `json:"rows"`
	Cols    []colMeta `json:"cols"`
	DataCRC uint32    `json:"data_crc"`
}

// CorruptError reports a segment file that failed structural or checksum
// validation; recovery quarantines the file and surfaces the reason.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("segment: corrupt segment %s: %s", e.Path, e.Reason)
}

// Write seals a batch into a new segment file at path, fsyncing before
// returning so a logged SEAL record never references a file the disk
// does not yet have. The batch must be fully dense (table tails are).
func Write(path string, b *types.Batch) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	crcW := &crcWriter{w: f}
	if _, err := crcW.Write(fileMagic); err != nil {
		return err
	}
	rows := b.Len()
	ft := footer{Rows: rows}
	for i, v := range b.Vecs {
		v = v.Densify()
		cm := colMeta{
			Name: b.Schema.Columns[i].Name,
			Type: uint8(v.Type),
			Off:  crcW.n,
		}
		block, err := encodeColumn(v, rows)
		if err != nil {
			return fmt.Errorf("segment: column %s: %w", cm.Name, err)
		}
		cm.Nulls = block.nulls != nil
		if _, err := crcW.Write(block.nulls); err != nil {
			return err
		}
		if _, err := crcW.Write(block.data); err != nil {
			return err
		}
		cm.Len = crcW.n - cm.Off
		cm.Min, cm.Max, cm.HasStats = columnMinMax(v, rows)
		ft.Cols = append(ft.Cols, cm)
	}
	ft.DataCRC = crcW.crc
	fb, err := json.Marshal(&ft)
	if err != nil {
		return err
	}
	trailer := make([]byte, trailerSize)
	binary.LittleEndian.PutUint32(trailer[0:4], uint32(len(fb)))
	binary.LittleEndian.PutUint32(trailer[4:8], crc32.Checksum(fb, castagnoli))
	copy(trailer[8:], trailerMagic)
	if _, err := f.Write(fb); err != nil {
		return err
	}
	if _, err := f.Write(trailer); err != nil {
		return err
	}
	return f.Sync()
}

// crcWriter tees writes into a running CRC32C and byte count.
type crcWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	c.n += int64(n)
	return n, err
}

// columnBlock is one encoded column: the optional null words followed by
// the type-specific data bytes.
type columnBlock struct {
	nulls []byte
	data  []byte
}

// encodeColumn serializes a dense vector of rows rows. Shared by the
// segment writer and the WAL batch codec so both framings carry the
// same bytes.
func encodeColumn(v *types.Vector, rows int) (*columnBlock, error) {
	if v.Len() != rows {
		return nil, fmt.Errorf("column has %d rows, want %d", v.Len(), rows)
	}
	b := &columnBlock{}
	if v.HasNulls() {
		words := make([]uint64, (rows+63)/64)
		for i := 0; i < rows; i++ {
			if v.IsNull(i) {
				words[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		b.nulls = make([]byte, 8*len(words))
		for i, w := range words {
			binary.LittleEndian.PutUint64(b.nulls[8*i:], w)
		}
	}
	switch v.Type {
	case types.Float:
		b.data = make([]byte, 8*rows)
		for i, x := range v.Floats {
			binary.LittleEndian.PutUint64(b.data[8*i:], math.Float64bits(x))
		}
	case types.Int:
		b.data = make([]byte, 8*rows)
		for i, x := range v.Ints {
			binary.LittleEndian.PutUint64(b.data[8*i:], uint64(x))
		}
	case types.Bool:
		b.data = make([]byte, rows)
		for i, x := range v.Bools {
			if x {
				b.data[i] = 1
			}
		}
	case types.String:
		var blob int
		for _, s := range v.Strings {
			blob += len(s)
		}
		b.data = make([]byte, 4*(rows+1)+blob)
		off := uint32(0)
		for i, s := range v.Strings {
			binary.LittleEndian.PutUint32(b.data[4*i:], off)
			off += uint32(len(s))
		}
		binary.LittleEndian.PutUint32(b.data[4*rows:], off)
		pos := 4 * (rows + 1)
		for _, s := range v.Strings {
			pos += copy(b.data[pos:], s)
		}
	default:
		return nil, fmt.Errorf("unsupported column type %v", v.Type)
	}
	return b, nil
}

// columnMinMax computes min/max over non-NULL rows of a numeric column.
func columnMinMax(v *types.Vector, rows int) (lo, hi float64, ok bool) {
	if !v.Type.IsNumeric() && v.Type != types.Bool {
		return 0, 0, false
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < rows; i++ {
		if v.IsNull(i) {
			continue
		}
		x := v.AsFloat(i)
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
		ok = true
	}
	if !ok {
		return 0, 0, false
	}
	return lo, hi, true
}

// Reader serves row ranges out of one sealed segment file. Reads go
// through ReadAt, so a Reader is safe for concurrent scans.
type Reader struct {
	path   string
	f      *os.File
	ft     footer
	schema *types.Schema
	// dataEnd is where the footer begins; Verify checksums [0, dataEnd).
	dataEnd int64
}

// Open validates the trailer and footer of the segment at path and
// returns a reader over it. Structural damage — truncation, a torn or
// overwritten footer, a checksum mismatch — comes back as *CorruptError.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	corrupt := func(reason string) (*Reader, error) {
		f.Close()
		return nil, &CorruptError{Path: path, Reason: reason}
	}
	if st.Size() < int64(len(fileMagic))+trailerSize {
		return corrupt(fmt.Sprintf("file too short (%d bytes)", st.Size()))
	}
	trailer := make([]byte, trailerSize)
	if _, err := f.ReadAt(trailer, st.Size()-trailerSize); err != nil {
		f.Close()
		return nil, err
	}
	if !bytes.Equal(trailer[8:], trailerMagic) {
		return corrupt("bad trailer magic")
	}
	ftLen := int64(binary.LittleEndian.Uint32(trailer[0:4]))
	ftCRC := binary.LittleEndian.Uint32(trailer[4:8])
	dataEnd := st.Size() - trailerSize - ftLen
	if ftLen <= 0 || dataEnd < int64(len(fileMagic)) {
		return corrupt("bad footer length")
	}
	fb := make([]byte, ftLen)
	if _, err := f.ReadAt(fb, dataEnd); err != nil {
		f.Close()
		return nil, err
	}
	if crc32.Checksum(fb, castagnoli) != ftCRC {
		return corrupt("footer checksum mismatch")
	}
	var ft footer
	if err := json.Unmarshal(fb, &ft); err != nil {
		return corrupt("footer unreadable: " + err.Error())
	}
	magic := make([]byte, len(fileMagic))
	if _, err := f.ReadAt(magic, 0); err != nil || !bytes.Equal(magic, fileMagic) {
		return corrupt("bad file magic")
	}
	cols := make([]types.Column, len(ft.Cols))
	for i, c := range ft.Cols {
		if c.Off < int64(len(fileMagic)) || c.Off+c.Len > dataEnd {
			return corrupt(fmt.Sprintf("column %s block out of bounds", c.Name))
		}
		cols[i] = types.Column{Name: c.Name, Type: types.DataType(c.Type)}
	}
	return &Reader{path: path, f: f, ft: ft, schema: types.NewSchema(cols...), dataEnd: dataEnd}, nil
}

// Path returns the segment's file path.
func (r *Reader) Path() string { return r.path }

// Rows returns the segment's row count.
func (r *Reader) Rows() int { return r.ft.Rows }

// Schema returns the segment's column layout.
func (r *Reader) Schema() *types.Schema { return r.schema }

// Stats returns (min, max, true) for a numeric column with at least one
// non-NULL row, as recorded at seal time.
func (r *Reader) Stats(col int) (lo, hi float64, ok bool) {
	c := r.ft.Cols[col]
	return c.Min, c.Max, c.HasStats
}

// Bytes returns the segment file size in bytes.
func (r *Reader) Bytes() int64 { return r.dataEnd + trailerSize }

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// Verify streams the whole data area and checks it against the footer's
// CRC32C. Recovery runs this once per manifest segment before serving
// from it.
func (r *Reader) Verify() error {
	var crc uint32
	buf := make([]byte, 256<<10)
	var off int64
	for off < r.dataEnd {
		n := int64(len(buf))
		if off+n > r.dataEnd {
			n = r.dataEnd - off
		}
		m, err := r.f.ReadAt(buf[:n], off)
		crc = crc32.Update(crc, castagnoli, buf[:m])
		off += int64(m)
		if err != nil && !(err == io.EOF && off == r.dataEnd) {
			return err
		}
	}
	if crc != r.ft.DataCRC {
		return &CorruptError{Path: r.path, Reason: "data checksum mismatch"}
	}
	return nil
}

// ReadColumnRange appends rows [lo, hi) of column col to dst, including
// NULL marks. dst must have the column's type.
func (r *Reader) ReadColumnRange(col, lo, hi int, dst *types.Vector) error {
	if lo < 0 || hi > r.ft.Rows || lo > hi {
		return fmt.Errorf("segment: range [%d,%d) out of %d rows", lo, hi, r.ft.Rows)
	}
	if lo == hi {
		return nil
	}
	cm := r.ft.Cols[col]
	base := dst.Len()
	n := hi - lo
	dataOff := cm.Off
	var nullWords []uint64
	if cm.Nulls {
		nw := (r.ft.Rows + 63) / 64
		dataOff += int64(8 * nw)
		// Read only the words covering [lo, hi).
		w0, w1 := lo/64, (hi+63)/64
		raw := make([]byte, 8*(w1-w0))
		if _, err := r.f.ReadAt(raw, cm.Off+int64(8*w0)); err != nil {
			return err
		}
		nullWords = make([]uint64, w1-w0)
		for i := range nullWords {
			nullWords[i] = binary.LittleEndian.Uint64(raw[8*i:])
		}
	}
	typ := types.DataType(cm.Type)
	switch typ {
	case types.Float:
		raw := make([]byte, 8*n)
		if _, err := r.f.ReadAt(raw, dataOff+int64(8*lo)); err != nil {
			return err
		}
		dst.Grow(n)
		for i := 0; i < n; i++ {
			dst.Floats = append(dst.Floats, math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:])))
		}
	case types.Int:
		raw := make([]byte, 8*n)
		if _, err := r.f.ReadAt(raw, dataOff+int64(8*lo)); err != nil {
			return err
		}
		dst.Grow(n)
		for i := 0; i < n; i++ {
			dst.Ints = append(dst.Ints, int64(binary.LittleEndian.Uint64(raw[8*i:])))
		}
	case types.Bool:
		raw := make([]byte, n)
		if _, err := r.f.ReadAt(raw, dataOff+int64(lo)); err != nil {
			return err
		}
		dst.Grow(n)
		for i := 0; i < n; i++ {
			dst.Bools = append(dst.Bools, raw[i] != 0)
		}
	case types.String:
		offRaw := make([]byte, 4*(n+1))
		if _, err := r.f.ReadAt(offRaw, dataOff+int64(4*lo)); err != nil {
			return err
		}
		offs := make([]uint32, n+1)
		for i := range offs {
			offs[i] = binary.LittleEndian.Uint32(offRaw[4*i:])
		}
		blobBase := dataOff + int64(4*(r.ft.Rows+1))
		blob := make([]byte, offs[n]-offs[0])
		if len(blob) > 0 {
			if _, err := r.f.ReadAt(blob, blobBase+int64(offs[0])); err != nil {
				return err
			}
		}
		dst.Grow(n)
		for i := 0; i < n; i++ {
			dst.Strings = append(dst.Strings, string(blob[offs[i]-offs[0]:offs[i+1]-offs[0]]))
		}
	default:
		return fmt.Errorf("segment: unsupported column type %v", typ)
	}
	if nullWords != nil {
		for i := lo; i < hi; i++ {
			if nullWords[(i/64)-lo/64]&(1<<(uint(i)&63)) != 0 {
				dst.SetNull(base + (i - lo))
			}
		}
	}
	return nil
}

// Quarantine renames a damaged segment file aside (path + ".quarantined")
// so recovery can proceed loudly without destroying the evidence.
func Quarantine(path string) (string, error) {
	q := path + ".quarantined"
	if err := os.Rename(path, q); err != nil {
		return "", err
	}
	return q, nil
}
