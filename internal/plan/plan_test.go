package plan

import (
	"strings"
	"testing"

	"raven/internal/sql"
	"raven/internal/storage"
	"raven/internal/types"
)

// testCatalog builds the hospital-shaped catalog from the paper's running
// example.
func testCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	pi := storage.NewTable("patient_info", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "age", Type: types.Float},
		types.Column{Name: "pregnant", Type: types.Int},
		types.Column{Name: "gender", Type: types.Int},
	))
	bt := storage.NewTable("blood_tests", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "bp", Type: types.Float},
	))
	pt := storage.NewTable("prenatal_tests", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "fetal_hr", Type: types.Float},
	))
	for i := 0; i < 10; i++ {
		if err := pi.AppendRow(int64(i), float64(20+i), int64(i%2), int64(i%2)); err != nil {
			t.Fatal(err)
		}
		if err := bt.AppendRow(int64(i), float64(100+i*5)); err != nil {
			t.Fatal(err)
		}
		if err := pt.AppendRow(int64(i), float64(120+i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, tb := range []*storage.Table{pi, bt, pt} {
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
		cat.SetUniqueKey(tb.Name, "id")
	}
	return cat
}

func bind(t *testing.T, cat *storage.Catalog, q string) Node {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBinder(cat)
	b.Vars["model"] = "duration_of_stay"
	p, err := b.BindSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBindSimpleSelect(t *testing.T) {
	cat := testCatalog(t)
	p := bind(t, cat, "SELECT id, age FROM patient_info WHERE age > 25")
	proj, ok := p.(*Project)
	if !ok {
		t.Fatalf("root = %T", p)
	}
	if proj.Schema().Len() != 2 || proj.Schema().Columns[1].Name != "age" {
		t.Errorf("schema = %v", proj.Schema())
	}
	if _, ok := proj.Child.(*Filter); !ok {
		t.Errorf("child = %T, want Filter", proj.Child)
	}
}

func TestBindStar(t *testing.T) {
	cat := testCatalog(t)
	p := bind(t, cat, "SELECT * FROM patient_info")
	if _, ok := p.(*Scan); !ok {
		t.Fatalf("SELECT * should bind to bare scan, got %T", p)
	}
	if p.Schema().Len() != 4 {
		t.Errorf("schema = %v", p.Schema())
	}
}

func TestBindJoinsDropDuplicateKey(t *testing.T) {
	cat := testCatalog(t)
	p := bind(t, cat, `SELECT * FROM patient_info AS pi JOIN blood_tests AS bt ON pi.id = bt.id`)
	j, ok := p.(*Join)
	if !ok {
		t.Fatalf("root = %T", p)
	}
	// id appears once: 4 left cols + 1 right col (bp)
	if j.Schema().Len() != 5 {
		t.Errorf("join schema = %v", j.Schema())
	}
	if j.Schema().IndexOf("bp") < 0 {
		t.Error("bp missing from join output")
	}
}

func TestBindPredictQuery(t *testing.T) {
	cat := testCatalog(t)
	q := `
WITH data AS (
  SELECT * FROM patient_info AS pi
  JOIN blood_tests AS bt ON pi.id = bt.id
  JOIN prenatal_tests AS pt ON bt.id = pt.id
)
SELECT d.id, p.length_of_stay
FROM PREDICT(MODEL = @model, DATA = data AS d)
WITH (length_of_stay FLOAT) AS p
WHERE d.pregnant = 1 AND p.length_of_stay > 7`
	p := bind(t, cat, q)
	// Project <- Filter <- Predict <- Join <- ...
	proj := p.(*Project)
	f := proj.Child.(*Filter)
	pr := f.Child.(*Predict)
	if pr.ModelName != "duration_of_stay" {
		t.Errorf("model = %q", pr.ModelName)
	}
	if pr.Schema().IndexOf("length_of_stay") < 0 {
		t.Error("prediction column missing")
	}
	if _, ok := pr.Child.(*Join); !ok {
		t.Errorf("predict child = %T", pr.Child)
	}
	s := Explain(p)
	if !strings.Contains(s, "Predict(model=duration_of_stay)") {
		t.Errorf("explain:\n%s", s)
	}
}

func TestBindAggregates(t *testing.T) {
	cat := testCatalog(t)
	p := bind(t, cat, "SELECT pregnant, COUNT(*) AS n, AVG(age) AS avg_age FROM patient_info GROUP BY pregnant")
	a, ok := p.(*Aggregate)
	if !ok {
		t.Fatalf("root = %T", p)
	}
	if len(a.Aggs) != 2 || a.Aggs[0].Func != AggCount || a.Aggs[1].Func != AggAvg {
		t.Errorf("aggs = %+v", a.Aggs)
	}
	if a.Schema().Columns[1].Type != types.Int {
		t.Error("COUNT should be INT")
	}
	if a.Schema().Columns[2].Name != "avg_age" {
		t.Errorf("schema = %v", a.Schema())
	}
}

func TestBindOrderLimitDistinct(t *testing.T) {
	cat := testCatalog(t)
	p := bind(t, cat, "SELECT DISTINCT pregnant FROM patient_info ORDER BY pregnant DESC LIMIT 5")
	l, ok := p.(*Limit)
	if !ok {
		t.Fatalf("root = %T", p)
	}
	s, ok := l.Child.(*Sort)
	if !ok || !s.Keys[0].Desc {
		t.Fatalf("limit child = %T", l.Child)
	}
	if _, ok := s.Child.(*Distinct); !ok {
		t.Fatalf("sort child = %T", s.Child)
	}
}

func TestBindErrors(t *testing.T) {
	cat := testCatalog(t)
	b := NewBinder(cat)
	bad := []string{
		"SELECT nope FROM patient_info",
		"SELECT * FROM missing_table",
		"SELECT id FROM patient_info WHERE age > 'x'",
		"SELECT p.s FROM PREDICT(MODEL=@undeclared, DATA=patient_info AS d) WITH (s FLOAT) AS p",
		"SELECT age, COUNT(*) FROM patient_info GROUP BY pregnant",
		"SELECT id FROM patient_info ORDER BY nope",
		"SELECT SUM(*) FROM patient_info",
	}
	for _, q := range bad {
		st, err := sql.Parse(q)
		if err != nil {
			continue // parse-level failure also acceptable
		}
		if _, err := b.BindSelect(st.(*sql.SelectStmt)); err == nil {
			t.Errorf("BindSelect(%q) should fail", q)
		}
	}
}

func TestBindCTEVisibility(t *testing.T) {
	cat := testCatalog(t)
	p := bind(t, cat, `WITH young AS (SELECT * FROM patient_info WHERE age < 25),
		young2 AS (SELECT id FROM young)
		SELECT id FROM young2`)
	if p == nil {
		t.Fatal("nil plan")
	}
	// CTE should not leak into a later statement
	b := NewBinder(cat)
	st, _ := sql.Parse("SELECT * FROM young")
	if _, err := b.BindSelect(st.(*sql.SelectStmt)); err == nil {
		t.Error("CTE leaked out of statement scope")
	}
}

func TestScanSetCols(t *testing.T) {
	cat := testCatalog(t)
	tb, _ := cat.Table("patient_info")
	s := NewScan(tb)
	if err := s.SetCols([]string{"age", "id"}); err != nil {
		t.Fatal(err)
	}
	if s.Schema().Len() != 2 || s.Schema().Columns[0].Name != "age" {
		t.Errorf("schema = %v", s.Schema())
	}
	if err := s.SetCols([]string{"nope"}); err == nil {
		t.Error("bad column should fail")
	}
}

func TestAggregateParallelizable(t *testing.T) {
	cat := testCatalog(t)
	tb, _ := cat.Table("patient_info")
	agg, err := NewAggregate(NewScan(tb), []string{"pregnant"}, []AggSpec{
		{Func: AggCount, Name: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Parallelizable() {
		t.Error("count/sum aggregate must be parallelizable")
	}
	for _, f := range []AggFunc{AggCount, AggSum, AggAvg, AggMin, AggMax} {
		if !f.Mergeable() {
			t.Errorf("%v must be mergeable", aggNames[f])
		}
	}
	if AggFunc(200).Mergeable() {
		t.Error("unknown aggregate function must not claim mergeability")
	}
}
