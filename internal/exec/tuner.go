package exec

import (
	"math"
	"sync/atomic"
	"time"

	"raven/internal/types"
)

// Tuning targets. Morsels aim for a fixed service time: long enough to
// amortize claim/merge overhead, short enough that the reorder window and
// load imbalance stay small. Inference chunks aim for a feature matrix
// that stays cache-resident.
const (
	// targetMorselNanos is the per-morsel service time the tuner steers
	// toward (4ms, the classic morsel-driven scheduling quantum).
	targetMorselNanos = 4e6
	// minMorselsPerWorker keeps enough morsels in flight per worker for
	// load balancing even when service times would allow huge morsels.
	minMorselsPerWorker = 4
	// maxMorselSize / maxSerialBatch bound how much a single morsel or
	// serial scan batch may buffer.
	maxMorselSize  = 64 * types.DefaultBatchSize
	maxSerialBatch = 32 * types.DefaultBatchSize
	// inferenceBytesBudget bounds the flat feature matrix one inference
	// chunk materializes (~L2-sized).
	inferenceBytesBudget = 256 << 10
	// ewmaAlpha weights new per-morsel observations.
	ewmaAlpha = 0.2
)

// Tuner adapts the data plane's batch sizes at lowering time: morsel size
// from table cardinality and the observed per-morsel service times of
// earlier queries, inference chunk rows from the model's feature width,
// and serial scan batches from scan cardinality. One Tuner serves a whole
// engine; all methods are safe for concurrent use.
type Tuner struct {
	// nanosPerRowBits is an EWMA of observed per-row service time,
	// stored as float64 bits (0 = no samples yet).
	nanosPerRowBits atomic.Uint64
	samples         atomic.Int64
	// lastFeatureDim remembers the width of the last tuned predictor so
	// Stats can report the matching chunk recommendation.
	lastFeatureDim atomic.Int64
}

// NewTuner returns an empty tuner (no observations yet).
func NewTuner() *Tuner { return &Tuner{} }

// ObserveMorsel folds one morsel execution (rows processed in d) into the
// service-time estimate. Exchange workers call this per morsel.
func (t *Tuner) ObserveMorsel(rows int, d time.Duration) {
	if t == nil || rows <= 0 || d <= 0 {
		return
	}
	sample := float64(d.Nanoseconds()) / float64(rows)
	for {
		old := t.nanosPerRowBits.Load()
		cur := math.Float64frombits(old)
		next := sample
		if cur > 0 {
			next = cur + ewmaAlpha*(sample-cur)
		}
		if t.nanosPerRowBits.CompareAndSwap(old, math.Float64bits(next)) {
			break
		}
	}
	t.samples.Add(1)
}

// nanosPerRow returns the current per-row service-time estimate, or 0
// before any observation.
func (t *Tuner) nanosPerRow() float64 {
	if t == nil {
		return 0
	}
	return math.Float64frombits(t.nanosPerRowBits.Load())
}

// MorselSize recommends rows-per-morsel for a parallel scan of tableRows
// rows at the given DOP: the row count whose estimated service time hits
// the target quantum, capped so every worker still sees several morsels,
// and clamped to [DefaultBatchSize, maxMorselSize]. Before any
// observation it returns DefaultMorselSize (bounded the same way).
func (t *Tuner) MorselSize(tableRows, dop int) int {
	size := DefaultMorselSize
	if npr := t.nanosPerRow(); npr > 0 {
		size = int(targetMorselNanos / npr)
	}
	if dop > 0 {
		if bal := tableRows / (dop * minMorselsPerWorker); bal < size {
			size = bal
		}
	}
	if size < types.DefaultBatchSize {
		size = types.DefaultBatchSize
	}
	if size > maxMorselSize {
		size = maxMorselSize
	}
	return size
}

// InferenceBatch recommends the rows scored per inference chunk for a
// model of the given feature width: as many rows as keep the flat
// float64 matrix within the cache budget, clamped to
// [DefaultBatchSize/8, DefaultBatchSize].
func (t *Tuner) InferenceBatch(featureDim int) int {
	if featureDim <= 0 {
		return types.DefaultBatchSize
	}
	if t != nil {
		t.lastFeatureDim.Store(int64(featureDim))
	}
	rows := inferenceBytesBudget / (8 * featureDim)
	if rows > types.DefaultBatchSize {
		rows = types.DefaultBatchSize
	}
	if min := types.DefaultBatchSize / 8; rows < min {
		rows = min
	}
	return rows
}

// SerialBatchSize recommends the batch size of a serial table scan: one
// batch for small tables (fewer per-batch vector headers), bounded above
// so a large serial scan still streams.
func (t *Tuner) SerialBatchSize(tableRows int) int {
	size := tableRows
	if size < types.DefaultBatchSize {
		size = types.DefaultBatchSize
	}
	if size > maxSerialBatch {
		size = maxSerialBatch
	}
	return size
}

// TunerStats is a snapshot of the tuner's state for stats endpoints.
type TunerStats struct {
	// Samples counts morsel observations folded in since Open.
	Samples int64 `json:"samples"`
	// NanosPerRow is the current EWMA per-row service-time estimate.
	NanosPerRow float64 `json:"nanos_per_row"`
	// MorselSize is the current recommendation for a large scan at the
	// given engine DOP (what the next big parallel query would use).
	MorselSize int `json:"morsel_size"`
	// InferenceBatch is the chunk recommendation at the representative
	// feature width of the last tuned predictor (0 if none was tuned).
	InferenceBatch int `json:"inference_batch,omitempty"`
}

// Stats snapshots the tuner. dop is the engine's default parallelism,
// used to report the morsel size a representative large scan would get.
func (t *Tuner) Stats(dop int) TunerStats {
	if t == nil {
		return TunerStats{}
	}
	st := TunerStats{
		Samples:     t.samples.Load(),
		NanosPerRow: t.nanosPerRow(),
		MorselSize:  t.MorselSize(1<<30, dop),
	}
	if d := t.lastFeatureDim.Load(); d > 0 {
		st.InferenceBatch = t.InferenceBatch(int(d))
	}
	return st
}
