// Package sql implements the SQL front end of the engine: a lexer, an AST,
// and a recursive-descent parser for the dialect the paper's inference
// queries use — SELECT/JOIN/WHERE/GROUP BY, WITH common table expressions,
// CREATE TABLE / INSERT, DECLARE @variables, and the SQL Server PREDICT
// table function that invokes a stored model (paper §2, Fig 1).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokVariable // @name
	TokSymbol   // punctuation and operators
)

// Token is one lexeme with position for error messages.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased, identifiers preserved
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "JOIN": true, "INNER": true,
	"LEFT": true, "ON": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"GROUP": true, "BY": true, "ORDER": true, "ASC": true, "DESC": true,
	"LIMIT": true, "WITH": true, "CREATE": true, "TABLE": true, "INSERT": true,
	"INTO": true, "VALUES": true, "DECLARE": true, "PREDICT": true,
	"TRUE": true, "FALSE": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "UNION": true,
	"ALL": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true,
	"MAX": true, "FLOAT": true, "INT": true, "BIGINT": true, "BOOL": true,
	"BIT": true, "VARCHAR": true, "PRIMARY": true, "KEY": true, "DROP": true,
	"DISTINCT": true,
}

// Lex tokenizes input; it returns an error for unterminated strings or
// illegal characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			start := i
			seenDot := false
			for i < n {
				d := input[i]
				if d == '.' && !seenDot {
					seenDot = true
					i++
					continue
				}
				if d < '0' || d > '9' {
					if d == 'e' || d == 'E' {
						// scientific notation
						i++
						if i < n && (input[i] == '+' || input[i] == '-') {
							i++
						}
						continue
					}
					break
				}
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '@':
			start := i
			i++
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			if i == start+1 {
				return nil, fmt.Errorf("sql: bare '@' at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokVariable, Text: input[start+1 : i], Pos: start})
		default:
			start := i
			// multi-char operators first
			if i+1 < n {
				two := input[i : i+2]
				if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
					if two == "!=" {
						two = "<>"
					}
					toks = append(toks, Token{Kind: TokSymbol, Text: two, Pos: start})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', ';', '=', '<', '>', '+', '-', '*', '/', '.':
				toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("sql: illegal character %q at offset %d", c, start)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
